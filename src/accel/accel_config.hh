/**
 * @file
 * Top-level configuration of the graph accelerator.
 */

#ifndef GMOMS_ACCEL_ACCEL_CONFIG_HH
#define GMOMS_ACCEL_ACCEL_CONFIG_HH

#include <algorithm>
#include <cstdint>
#include <utility>
#include <string>
#include <vector>

#include "src/cache/moms_system.hh"
#include "src/check/check_config.hh"
#include "src/cluster/cluster_config.hh"
#include "src/mem/mem_substrate.hh"
#include "src/obs/telemetry.hh"

namespace gmoms
{

struct AccelConfig
{
    std::uint32_t num_pes = 16;
    MomsConfig moms = MomsConfig::twoLevel(16);

    /** External-memory substrate: DDR4 channels (the paper's f1 shell,
     *  default) or HBM2 pseudo-channels, with channel count, address
     *  interleave and per-channel timing. */
    MemSubstrateConfig mem;

    /** Encode edge shards in the packed half-word CSR (degree-aware
     *  vertex packing: shard edges sorted by destination so one 16-bit
     *  destination selector amortizes over a high-degree vertex's
     *  in-edges, and sources shrink to 16-bit half-words). Roughly
     *  halves edge-stream traffic; results are bit-identical because
     *  every gather is commutative. Ineligible partitions (offsets or
     *  weights that overflow a half-word) fall back to the plain
     *  32-bit encoding automatically. Set by Session from the
     *  Preprocessing::*Packed variants. */
    bool packed_edges = false;

    /**
     * Destination/source interval sizes. The paper holds 32,768
     * destination nodes per PE in URAM with 16-bit source offsets
     * (Ns = 65,536); our datasets are scaled ~16-4096x, so the default
     * intervals scale too (DESIGN.md section 5). Ns must be a multiple
     * of Nd so destination intervals never straddle source intervals.
     */
    std::uint32_t nd = 2048;
    std::uint32_t ns = 4096;

    /** Maximum simultaneous threads (outstanding source reads) per PE;
     *  the paper's SSSP state memory has 8,192 slots, scaled here. */
    std::uint32_t max_threads = 1024;

    /** Edge-stream DMA burst size in 64 B lines and the number of edge
     *  bursts a PE keeps in flight (Section IV-D). */
    std::uint32_t edge_burst_lines = 8;
    std::uint32_t max_edge_bursts = 4;

    /** Node-array DMA burst size in lines (32-beat 512-bit bursts). */
    std::uint32_t init_burst_lines = 32;

    /** Node-array bursts a PE keeps in flight during init. One is
     *  enough when the interleave unit lets a burst carry
     *  init_burst_lines full lines (DDR4's 2 KiB units); HBM's 256 B
     *  units cap every burst so small that a single outstanding burst
     *  becomes round-trip-latency-bound — hbmTwoLevel() raises this. */
    std::uint32_t init_outstanding_bursts = 1;

    /** Nodes consumed/produced per cycle during init/writeback. */
    std::uint32_t nodes_per_cycle = 4;

    /** Safety limit for one run. */
    Cycle max_cycles = 500'000'000;

    /** Observability: disabled by default (zero per-cycle cost — no
     *  sampler component is created and all probe pointers stay null).
     *  When enabled, results are still bit-exact; see docs/MODEL.md
     *  "Telemetry & tracing". */
    TelemetryConfig telemetry;

    /** Run the simulation engine in legacy tick-everything mode
     *  (cycle- and stat-exact with the default idle-aware mode — see
     *  tests/test_engine_skip.cc — just slower; also forced globally
     *  by GMOMS_FULL_TICK=1). */
    bool full_tick_engine = false;

    /** Tick thread team size: 0 defers to GMOMS_TICK_THREADS (unset =
     *  serial), >= 2 ticks hazard-free component groups (DRAM
     *  channels, MOMS banks) on that many threads. Results, telemetry
     *  and check signatures are bit-identical at any value; see
     *  docs/MODEL.md "Deterministic parallel ticking & checkpoints". */
    unsigned tick_threads = 0;

    /** Hardening layer: disabled by default (no harness component, no
     *  shadow memory, all hook pointers null — zero per-cycle cost).
     *  When enabled, results are still bit-exact; the run merely gains
     *  the right to abort with a CheckError diagnostic. See
     *  docs/MODEL.md "Invariants & watchdog". */
    CheckConfig checks;

    /** Multi-board scale-out: boards == 1 (default) runs the classic
     *  single-board Accelerator; boards in [2, 8] replicates the whole
     *  micro-architecture per board on one deterministic engine and
     *  connects the boards through a timed serial link. Values stay
     *  identical to the single board (docs/MODEL.md "Multi-board
     *  clusters"). */
    ClusterConfig cluster;

    /** Paper-style label, e.g. "16/16 moms 0k @4ch" (DDR4) or
     *  "16/16 moms 0k @16pc-hbm" (HBM2). */
    std::string
    label() const
    {
        return moms.label(num_pes) + " @" + mem.label() +
               (packed_edges ? " packed" : "");
    }

    /**
     * Check every config-level constraint the construction path would
     * otherwise trip over one at a time (or worse, silently mis-model):
     * throws FatalError listing *all* problems with actionable
     * messages. Called by the Accelerator constructor; call directly to
     * vet a config before a long sweep.
     */
    void validate() const;

    /**
     * The non-throwing form of validate(): every violated constraint as
     * one actionable message, empty when the config is sound. The
     * serving layer's admission control folds these into its structured
     * JobSpec rejection instead of failing mid-run.
     */
    std::vector<std::string> validateProblems() const;

    // -- named presets (single source of truth; see ISSUE 4) -------------

    /** @p moms shaped onto @p pes PEs / @p channels DRAM channels with
     *  the repo-wide default timing knobs — the base every named preset
     *  and bench point builds on. */
    static AccelConfig preset(MomsConfig moms, std::uint32_t pes,
                              std::uint32_t channels = 4);

    /** The paper's headline 18-PE / 16-bank two-level MOMS (Fig. 11
     *  "18/16 2lvl"). */
    static AccelConfig paper18x16TwoLevel();
    /** Shared-only MOMS, 16 PEs / 16 banks ([6]'s organization). */
    static AccelConfig sharedMoms();
    /** Private-only MOMS, one bank per PE, 20 PEs (Fig. 8 middle). */
    static AccelConfig privateMoms();
    /** Traditional non-blocking-cache baseline in the two-level shape
     *  (16 assoc MSHRs, 8 subentries/MSHR). */
    static AccelConfig traditionalNbc();

    /**
     * HBM2 substrate with the two-level vertex-cache organization the
     * narrow-pseudo-channel regime rewards: one shared (L2) MOMS bank
     * per pseudo-channel — preserving the static bank-to-channel
     * binding — and @p private_cache_bytes of per-PE (L1) vertex cache
     * soaking up reuse before requests reach the narrow buses. Pass
     * private_cache_bytes = 0 for the L2-only organization.
     */
    static AccelConfig hbmTwoLevel(std::uint32_t pseudo_channels = 16,
                                   std::uint32_t pes = 16,
                                   std::uint64_t private_cache_bytes =
                                       2048);
};

/**
 * Default interval sizes for a dataset of @p num_nodes nodes: aim for
 * many more jobs than PEs (the paper has 1-2 orders of magnitude more)
 * while respecting the 15/16-bit offset limits, with Ns = 2 Nd as in
 * the paper (65,536 / 32,768).
 */
inline std::pair<std::uint32_t, std::uint32_t>
defaultIntervals(NodeId num_nodes, std::uint32_t target_jobs = 128)
{
    std::uint64_t nd = ceilDiv(num_nodes, target_jobs);
    nd = std::min<std::uint64_t>(std::max<std::uint64_t>(nd, 128),
                                 32768);
    const std::uint64_t ns = std::min<std::uint64_t>(2 * nd, 65536);
    return {static_cast<std::uint32_t>(nd),
            static_cast<std::uint32_t>(ns)};
}

/**
 * Edge-aware variant: picks the job count from the edge budget so that
 * per-job fixed costs (pointer fetch, init, writeback) stay small next
 * to the edge work even on the edge-capped dataset stand-ins.
 */
inline std::pair<std::uint32_t, std::uint32_t>
defaultIntervalsFor(NodeId num_nodes, EdgeId num_edges)
{
    const std::uint64_t target_jobs = std::clamp<std::uint64_t>(
        num_edges / 6000, 48, 2048);
    return defaultIntervals(num_nodes,
                            static_cast<std::uint32_t>(target_jobs));
}

} // namespace gmoms

#endif // GMOMS_ACCEL_ACCEL_CONFIG_HH
