#include "src/accel/resource_model.hh"

#include <algorithm>
#include <cmath>

namespace gmoms
{

namespace
{

/**
 * Our simulated structures are scaled down ~8x together with the
 * datasets (DESIGN.md section 5); the resource model reports the
 * paper-equivalent full-size design, so capacities are scaled back up.
 */
constexpr double kScale = 8.0;

constexpr double kBramBits = 36.0 * 1024;
constexpr double kUramBits = 288.0 * 1024;

ResourceVector
peCost(const AccelConfig& cfg, const AlgoSpec& spec)
{
    ResourceVector v;
    const bool fp = spec.gather_latency > 1;  // HLS floating-point PE
    v.luts = 6'500 + (fp ? 2'600 : 0) + (spec.weighted ? 1'400 : 0);
    v.ffs = 1.4 * v.luts;
    v.dsp = fp ? 12 : 2;
    // Destination-node URAM: Nd nodes of 32/64-bit values.
    const double bram_bits = spec.algo == Algorithm::PageRank ? 64 : 32;
    v.uram = std::ceil(cfg.nd * kScale * bram_bits / kUramBits);
    // State memory + free ID queue for weighted graphs (Fig. 10a).
    if (spec.weighted) {
        v.bram36 =
            std::ceil(cfg.max_threads * kScale * 48 / kBramBits) + 1;
    } else {
        v.bram36 = 1;  // DMA queues etc.
    }
    v.bram36 += 2;  // edge/pointer DMA buffering
    return v;
}

ResourceVector
bankCost(const MomsBankConfig& b)
{
    ResourceVector v;
    v.luts = b.assoc_mshr ? 2'200 : 4'400;  // cuckoo pipelines cost more
    if (b.cache_bytes > 0)
        v.luts += 600;
    v.ffs = 1.3 * v.luts;
    // MSHRs live in BRAM (64-bit entries), subentries and cache data in
    // URAM (paper, Section V-B).
    v.bram36 = std::ceil(b.num_mshrs * kScale * 64 / kBramBits);
    v.uram = std::ceil(b.num_subentries * kScale * 48 / kUramBits) +
             std::ceil(b.cache_bytes * kScale * 8 / kUramBits);
    return v;
}

} // namespace

ResourceBreakdown
estimateResources(const AccelConfig& cfg, const AlgoSpec& spec,
                  const DeviceResources& dev)
{
    ResourceBreakdown r;

    const ResourceVector pe = peCost(cfg, spec);
    r.pes.luts = pe.luts * cfg.num_pes;
    r.pes.ffs = pe.ffs * cfg.num_pes;
    r.pes.bram36 = pe.bram36 * cfg.num_pes;
    r.pes.uram = pe.uram * cfg.num_pes;
    r.pes.dsp = pe.dsp * cfg.num_pes;

    const bool has_shared =
        cfg.moms.topology != MomsConfig::Topology::Private;
    const bool has_private =
        cfg.moms.topology != MomsConfig::Topology::Shared;
    if (has_shared) {
        ResourceVector b = bankCost(cfg.moms.shared_bank);
        r.moms.luts += b.luts * cfg.moms.num_shared_banks;
        r.moms.ffs += b.ffs * cfg.moms.num_shared_banks;
        r.moms.bram36 += b.bram36 * cfg.moms.num_shared_banks;
        r.moms.uram += b.uram * cfg.moms.num_shared_banks;
    }
    if (has_private) {
        ResourceVector b = bankCost(cfg.moms.private_bank);
        r.moms.luts += b.luts * cfg.num_pes;
        r.moms.ffs += b.ffs * cfg.num_pes;
        r.moms.bram36 += b.bram36 * cfg.num_pes;
        r.moms.uram += b.uram * cfg.num_pes;
    }

    // Interconnect: burst read/write crossbars (PE x channel, 512-bit),
    // the MOMS request/response crossbars (client x bank) and per-die
    // arbiters. This is where the LUTs go (Fig. 17).
    const double k = cfg.num_pes;
    const double c = cfg.mem.channels;
    const double banks = has_shared ? cfg.moms.num_shared_banks : 0;
    r.interconnect.luts = 1'700 * k * c          // burst crossbars
                          + 320 * k * banks      // MOMS crossbars
                          + 12'000 * 3;          // per-die arbiters
    r.interconnect.ffs = 1.8 * r.interconnect.luts;
    r.interconnect.bram36 = 4 * c;

    r.total += r.pes;
    r.total += r.moms;
    r.total += r.interconnect;

    const double avail = 1.0 - dev.shell_fraction;
    r.lut_util = r.total.luts / (dev.luts * avail);
    r.ff_util = r.total.ffs / (dev.ffs * avail);
    r.bram_util = r.total.bram36 / (dev.bram36 * avail);
    r.uram_util = r.total.uram / (dev.uram * avail);
    r.dsp_util = r.total.dsp / (dev.dsp * avail);

    // The central SLR hosts the shared crossbars and two memory
    // controllers; it concentrates interconnect LUTs.
    r.peak_slr_lut_util = std::min(1.0, r.lut_util * 1.35);

    // Handshake bundles that cross SLR boundaries: each PE's MOMS and
    // burst paths, each shared bank's DRAM path, channel spines.
    r.slr_crossings = static_cast<std::uint32_t>(
        k + banks + 8 * (cfg.mem.channels - 1));
    return r;
}

double
modelPowerWatts(const AccelConfig& cfg, const AlgoSpec& spec)
{
    const ResourceBreakdown r = estimateResources(cfg, spec);
    const double f_ghz = modelFrequencyMhz(cfg, spec) / 1000.0;
    // Static power of the powered-on device plus shell overhead.
    const double station = 7.0;
    // Dynamic: per-LUT and per-memory-block toggling at fmax.
    const double logic = 20.0 * (r.total.luts / 1.0e6) * f_ghz / 0.2;
    const double memories =
        1.6 * ((r.total.bram36 + 3.0 * r.total.uram) / 1000.0) *
        f_ghz / 0.2;
    return station + logic + memories;
}

double
modelFrequencyMhz(const AccelConfig& cfg, const AlgoSpec& spec)
{
    const ResourceBreakdown r = estimateResources(cfg, spec);
    double f = 250.0;
    // Routability penalty: grows once the busiest SLR passes ~65%.
    f -= 120.0 * std::max(0.0, r.peak_slr_lut_util - 0.65);
    // Congestion from inter-SLR crossings (Fig. 14 discussion: the
    // 4-channel PageRank/SSSP systems run slower than the 2-channel
    // ones because they use all SLRs).
    f -= 0.28 * r.slr_crossings;
    // The HLS floating-point pipeline closes timing slightly lower.
    if (spec.gather_latency > 1)
        f -= 6.0;
    return std::clamp(f, 150.0, 250.0);
}

} // namespace gmoms
