#include "src/accel/session.hh"

#include <numeric>

#include "src/graph/generator.hh"
#include "src/sim/log.hh"

namespace gmoms
{

GraphSession::GraphSession(CooGraph graph, AccelConfig config,
                           Preprocessing preprocessing)
    : config_(std::move(config))
{
    if (graph.numNodes() == 0)
        fatal("GraphSession needs a nonempty graph");

    auto [nd, ns] =
        defaultIntervalsFor(graph.numNodes(), graph.numEdges());
    config_.nd = nd;
    config_.ns = ns;

    // Record the permutation so callers can translate node ids.
    to_internal_.resize(graph.numNodes());
    std::iota(to_internal_.begin(), to_internal_.end(), NodeId{0});
    switch (preprocessing) {
      case Preprocessing::None:
        break;
      case Preprocessing::Hash:
        to_internal_ = hashCacheLines(graph.numNodes(), nd);
        break;
      case Preprocessing::Dbg:
        to_internal_ = dbgReorder(graph);
        break;
      case Preprocessing::DbgHash: {
        auto dbg = dbgReorder(graph);
        to_internal_ = composePermutations(
            dbg, hashCacheLines(graph.numNodes(), nd));
        break;
      }
    }
    to_original_.resize(graph.numNodes());
    for (NodeId i = 0; i < graph.numNodes(); ++i)
        to_original_[to_internal_[i]] = i;

    graph_ = graph.relabeled(to_internal_);
    graph_.setWeighted(false);
    pg_ = std::make_unique<PartitionedGraph>(graph_, nd, ns);
}

NodeId
GraphSession::internalId(NodeId original) const
{
    if (original >= to_internal_.size())
        fatal("internalId: node out of range");
    return to_internal_[original];
}

NodeId
GraphSession::originalId(NodeId internal) const
{
    if (internal >= to_original_.size())
        fatal("originalId: node out of range");
    return to_original_[internal];
}

SessionResult
GraphSession::runSpec(const AlgoSpec& spec, const CooGraph& g)
{
    const PartitionedGraph& pg =
        spec.weighted ? *pg_weighted_ : *pg_;
    Accelerator accel(config_, pg, spec);
    SessionResult out;
    out.run = accel.run();
    out.fmax_mhz = modelFrequencyMhz(config_, spec);
    out.gteps = out.run.gteps(out.fmax_mhz);
    out.power_watts = modelPowerWatts(config_, spec);
    out.values.resize(g.numNodes());
    for (NodeId i = 0; i < g.numNodes(); ++i)
        out.values[i] = spec.finalValue(out.run.raw_values[i], i);
    return out;
}

SessionResult
GraphSession::pageRank(std::uint32_t iterations)
{
    return runSpec(AlgoSpec::pageRank(graph_, iterations), graph_);
}

SessionResult
GraphSession::scc(std::uint32_t max_iterations)
{
    return runSpec(AlgoSpec::scc(graph_.numNodes(), max_iterations),
                   graph_);
}

SessionResult
GraphSession::sssp(NodeId source, std::uint32_t max_iterations)
{
    if (!weighted_) {
        weighted_ = graph_;
        addRandomWeights(*weighted_, 0x5e5e5e);
        pg_weighted_ = std::make_unique<PartitionedGraph>(
            *weighted_, config_.nd, config_.ns);
    }
    return runSpec(
        AlgoSpec::sssp(internalId(source), max_iterations),
        *weighted_);
}

SessionResult
GraphSession::bfs(NodeId source, std::uint32_t max_iterations)
{
    return runSpec(AlgoSpec::bfs(internalId(source), max_iterations),
                   graph_);
}

} // namespace gmoms
