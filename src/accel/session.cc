#include "src/accel/session.hh"

#include <numeric>

#include "src/accel/checkpoint.hh"
#include "src/cluster/cluster_engine.hh"
#include "src/graph/generator.hh"
#include "src/sim/log.hh"
#include "src/sim/report.hh"

namespace gmoms
{

Session::Session(std::shared_ptr<const CooGraph> graph,
                 AccelConfig config, Preprocessing preprocessing,
                 std::uint32_t weight_seed)
    : config_(std::move(config)), src_(std::move(graph)),
      weight_seed_(weight_seed)
{
    if (!src_ || src_->numNodes() == 0)
        fatal("Session needs a nonempty graph");

    auto [nd, ns] =
        defaultIntervalsFor(src_->numNodes(), src_->numEdges());
    config_.nd = nd;
    config_.ns = ns;
    config_.validate();

    // Record the permutation so callers can translate node ids. The
    // identity permutation is kept implicit (empty vectors): sweeps
    // construct a Session per run, and two O(N) id tables per run is
    // real cost on multi-million-node datasets.
    // The packed variants request the half-word CSR edge encoding on
    // top of their base relabeling; the flag rides on the config so it
    // reaches layouts, fingerprints and checkpoints uniformly.
    if (packedCsr(preprocessing))
        config_.packed_edges = true;
    std::vector<NodeId> perm;
    switch (basePreprocessing(preprocessing)) {
      case Preprocessing::Hash:
        perm = hashCacheLines(src_->numNodes(), nd);
        break;
      case Preprocessing::Dbg:
        perm = dbgReorder(*src_);
        break;
      case Preprocessing::DbgHash: {
        auto dbg = dbgReorder(*src_);
        perm = composePermutations(
            dbg, hashCacheLines(src_->numNodes(), nd));
        break;
      }
      default:
        break;
    }
    if (!perm.empty()) {
        std::vector<NodeId> inv(src_->numNodes());
        for (NodeId i = 0; i < src_->numNodes(); ++i)
            inv[perm[i]] = i;
        to_internal_ = std::make_shared<const std::vector<NodeId>>(
            std::move(perm));
        to_original_ = std::make_shared<const std::vector<NodeId>>(
            std::move(inv));
    }
}

void
Session::ensurePlain() const
{
    if (plain_)
        return;
    if (!to_internal_ && !src_->weighted()) {
        plain_ = src_;  // already the plain view: share, don't copy
    } else {
        CooGraph g = !to_internal_ ? *src_
                                   : src_->relabeled(*to_internal_);
        g.setWeighted(false);
        plain_ = std::make_shared<const CooGraph>(std::move(g));
    }
    pg_plain_ = std::make_shared<const PartitionedGraph>(
        *plain_, config_.nd, config_.ns);
}

void
Session::ensureWeighted() const
{
    if (weighted_)
        return;
    if (src_->weighted()) {
        // The dataset brought its own weights: honor them (relabeled()
        // carries weights through the permutation).
        weighted_ = !to_internal_
                        ? src_
                        : std::make_shared<const CooGraph>(
                              src_->relabeled(*to_internal_));
    } else {
        ensurePlain();
        CooGraph g = *plain_;
        addRandomWeights(g, weight_seed_);
        weighted_ = std::make_shared<const CooGraph>(std::move(g));
    }
    pg_weighted_ = std::make_shared<const PartitionedGraph>(
        *weighted_, config_.nd, config_.ns);
}

const CooGraph&
Session::graph() const
{
    ensurePlain();
    return *plain_;
}

const PartitionedGraph&
Session::partition() const
{
    ensurePlain();
    return *pg_plain_;
}

NodeId
Session::internalId(NodeId original) const
{
    if (original >= src_->numNodes())
        fatal("internalId: node out of range");
    return !to_internal_ ? original : (*to_internal_)[original];
}

NodeId
Session::originalId(NodeId internal) const
{
    if (internal >= src_->numNodes())
        fatal("originalId: node out of range");
    return !to_original_ ? internal : (*to_original_)[internal];
}

SessionResult
Session::runSpec(const AlgoSpec& spec, const CooGraph& g,
                 const PartitionedGraph& pg,
                 const std::string& memo_key)
{
    // Checkpoint-backed sessions replay memoized results: the
    // simulator is deterministic, so an identical (dataset, prep,
    // config, algo, args) run is bit-identical — values, counters and
    // checksums included. Failed runs never reach the store (a
    // CheckError propagates out of accel.run()).
    if (memo_) {
        if (auto hit = memo_->lookup(memo_key))
            return *hit;
    }
    SessionResult out;
    if (config_.cluster.enabled()) {
        // Multi-board path: the timed plane runs one engine with a
        // Board per shard; raw_values come from the functional plane,
        // so they are bit-identical to the single-board run below.
        WallTimer timer;
        ClusterRunResult cres =
            runCluster(config_, g, pg, spec);
        out.wall_seconds = timer.elapsedSeconds();
        out.run = std::move(cres.run);
        out.cluster = std::make_shared<const ClusterReport>(
            std::move(cres.report));
        out.engine = cres.engine;
        out.full_tick = cres.full_tick;
    } else {
        Accelerator accel(config_, pg, spec);
        WallTimer timer;
        out.run = accel.run();
        out.wall_seconds = timer.elapsedSeconds();
        out.engine = accel.engine().stats();
        out.full_tick = accel.engine().fullTick();
    }
    out.fmax_mhz = modelFrequencyMhz(config_, spec);
    out.gteps = out.run.gteps(out.fmax_mhz);
    out.power_watts = modelPowerWatts(config_, spec);
    out.values.resize(g.numNodes());
    for (NodeId i = 0; i < g.numNodes(); ++i)
        out.values[i] = spec.finalValue(out.run.raw_values[i], i);
    if (memo_)
        memo_->store(memo_key, out);
    return out;
}

SessionResult
Session::pageRank(std::uint32_t iterations)
{
    ensurePlain();
    return runSpec(AlgoSpec::pageRank(*plain_, iterations), *plain_,
                   *pg_plain_, "PR:i" + std::to_string(iterations));
}

SessionResult
Session::scc(std::uint32_t max_iterations)
{
    ensurePlain();
    return runSpec(
        AlgoSpec::scc(plain_->numNodes(), max_iterations), *plain_,
        *pg_plain_, "SCC:i" + std::to_string(max_iterations));
}

SessionResult
Session::sssp(NodeId source, std::uint32_t max_iterations)
{
    ensureWeighted();
    return runSpec(
        AlgoSpec::sssp(internalId(source), max_iterations), *weighted_,
        *pg_weighted_,
        "SSSP:s" + std::to_string(source) + ":i" +
            std::to_string(max_iterations) + ":w" +
            std::to_string(weight_seed_));
}

SessionResult
Session::bfs(NodeId source, std::uint32_t max_iterations)
{
    ensurePlain();
    return runSpec(AlgoSpec::bfs(internalId(source), max_iterations),
                   *plain_, *pg_plain_,
                   "BFS:s" + std::to_string(source) + ":i" +
                       std::to_string(max_iterations));
}

SessionBuilder&
SessionBuilder::dataset(CooGraph graph)
{
    graph_ = std::make_shared<const CooGraph>(std::move(graph));
    return *this;
}

SessionBuilder&
SessionBuilder::dataset(std::shared_ptr<const CooGraph> graph)
{
    graph_ = std::move(graph);
    return *this;
}

SessionBuilder&
SessionBuilder::datasetView(const CooGraph& graph)
{
    // Aliasing shared_ptr with a no-op deleter: no copy, no ownership.
    graph_ = std::shared_ptr<const CooGraph>(&graph,
                                             [](const CooGraph*) {});
    return *this;
}

SessionBuilder&
SessionBuilder::config(AccelConfig cfg)
{
    config_ = std::move(cfg);
    return *this;
}

SessionBuilder&
SessionBuilder::preprocessing(Preprocessing prep)
{
    prep_ = prep;
    return *this;
}

SessionBuilder&
SessionBuilder::weightSeed(std::uint32_t seed)
{
    weight_seed_ = seed;
    return *this;
}

SessionBuilder&
SessionBuilder::algo(std::string name)
{
    algo_ = std::move(name);
    return *this;
}

SessionBuilder&
SessionBuilder::iterations(std::uint32_t n)
{
    iterations_ = n;
    return *this;
}

SessionBuilder&
SessionBuilder::source(NodeId source)
{
    source_ = source;
    return *this;
}

SessionBuilder&
SessionBuilder::telemetry(bool on)
{
    telemetry_on_ = on;
    return *this;
}

SessionBuilder&
SessionBuilder::telemetry(TelemetryConfig cfg)
{
    telemetry_cfg_ = std::move(cfg);
    return *this;
}

SessionBuilder&
SessionBuilder::checks(bool on)
{
    checks_on_ = on;
    return *this;
}

SessionBuilder&
SessionBuilder::checks(CheckConfig cfg)
{
    checks_cfg_ = std::move(cfg);
    return *this;
}

AccelConfig
SessionBuilder::effectiveConfig() const
{
    AccelConfig cfg = config_;
    if (telemetry_cfg_)
        cfg.telemetry = *telemetry_cfg_;
    if (telemetry_on_)
        cfg.telemetry.enabled = *telemetry_on_;
    if (checks_cfg_)
        cfg.checks = *checks_cfg_;
    if (checks_on_)
        cfg.checks.enabled = *checks_on_;
    return cfg;
}

Session
SessionBuilder::build() const
{
    if (!graph_)
        fatal("SessionBuilder: no dataset — call .dataset(...) first");
    return Session(graph_, effectiveConfig(), prep_, weight_seed_);
}

SessionResult
SessionBuilder::run() const
{
    Session session = build();
    if (algo_ == "PageRank")
        return session.pageRank(iterations_.value_or(10));
    if (algo_ == "SCC")
        return session.scc(iterations_.value_or(1000));
    if (algo_ == "SSSP")
        return session.sssp(source_, iterations_.value_or(1000));
    if (algo_ == "BFS")
        return session.bfs(source_, iterations_.value_or(1000));
    if (algo_.empty())
        fatal("SessionBuilder::run needs .algo(...): one of PageRank, "
              "SCC, SSSP, BFS");
    fatal("SessionBuilder: unknown algorithm \"" + algo_ +
          "\" (expected PageRank, SCC, SSSP or BFS)");
}

} // namespace gmoms
