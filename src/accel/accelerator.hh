/**
 * @file
 * Top-level graph accelerator (Fig. 6): scheduler, PEs, MOMS and the
 * multi-channel DRAM system, driven through the Template 1 iteration
 * loop with active-shard tracking and synchronous array swapping.
 */

#ifndef GMOMS_ACCEL_ACCELERATOR_HH
#define GMOMS_ACCEL_ACCELERATOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/accel/accel_config.hh"
#include "src/accel/pe.hh"
#include "src/accel/scheduler.hh"
#include "src/algo/spec.hh"
#include "src/cache/moms_system.hh"
#include "src/check/harness.hh"
#include "src/check/shadow_memory.hh"
#include "src/graph/layout.hh"
#include "src/graph/partition.hh"
#include "src/mem/memory_system.hh"
#include "src/sim/engine.hh"

namespace gmoms
{

/** Outcome of one accelerator run. */
struct RunResult
{
    Cycle cycles = 0;
    std::uint32_t iterations = 0;
    EdgeId edges_processed = 0;
    std::uint64_t dram_bytes_read = 0;
    std::uint64_t dram_bytes_written = 0;
    double moms_hit_rate = 0.0;
    std::uint64_t moms_requests = 0;
    std::uint64_t moms_secondary_misses = 0;
    std::uint64_t moms_lines_from_mem = 0;
    std::uint64_t pe_raw_stalls = 0;
    /** Whether the packed half-word edge encoding was in effect (false
     *  also when requested but ineligible — the silent fallback), and
     *  the resulting edge-section footprint. Deterministic layout
     *  properties, unlike the timing-dependent byte counters above. */
    bool packed_layout = false;
    std::uint64_t edge_section_bytes = 0;
    /** Final raw V_DRAM node values. */
    std::vector<std::uint32_t> raw_values;

    /** Telemetry summary; null unless AccelConfig::telemetry.enabled.
     *  Outlives the Accelerator (safe to export/print later). */
    std::shared_ptr<const TelemetrySummary> telemetry;

    /** Throughput in giga-traversed-edges/s at @p freq_mhz. */
    double
    gteps(double freq_mhz) const
    {
        if (cycles == 0)
            return 0.0;
        return static_cast<double>(edges_processed) * freq_mhz /
               (static_cast<double>(cycles) * 1e3);
    }
};

class Accelerator
{
  public:
    /**
     * Assemble the full system for @p pg / @p spec. The partitioned
     * graph's interval sizes must match the config (they are taken
     * from @p pg).
     */
    Accelerator(const AccelConfig& cfg, const PartitionedGraph& pg,
                const AlgoSpec& spec);
    ~Accelerator();

    /** Execute until convergence or spec.max_iterations. */
    RunResult run();

    const Engine& engine() const { return engine_; }
    const MemorySystem& mem() const { return *mem_; }
    const MomsSystem& moms() const { return *moms_; }
    const std::vector<std::unique_ptr<Pe>>& pes() const { return pes_; }
    const GraphLayout& layout() const { return *layout_; }

    /** Mutable MOMS access for the hardening-layer regression tests
     *  (fault-hook attachment, direct MSHR pokes). */
    MomsSystem& momsForTest() { return *moms_; }

  private:
    /** Recompute per-shard active flags from the updated intervals
     *  (Template 1 lines 16-17 and 22). @return true if any source
     *  interval stays active. */
    bool updateActiveFlags();

    AccelConfig cfg_;
    const PartitionedGraph* pg_;
    AlgoSpec spec_;

    Engine engine_;
    std::unique_ptr<MemorySystem> mem_;
    std::unique_ptr<MomsSystem> moms_;
    std::unique_ptr<GraphLayout> layout_;
    std::unique_ptr<Scheduler> sched_;
    std::vector<std::unique_ptr<Pe>> pes_;
    /** Hardening layer; both null unless cfg_.checks.enabled. */
    std::unique_ptr<ShadowMemory> shadow_;
    std::unique_ptr<CheckHarness> check_;
    /** Last member: destroyed first, while the components whose
     *  counters it references are still alive. */
    std::unique_ptr<Telemetry> tele_;
};

} // namespace gmoms

#endif // GMOMS_ACCEL_ACCELERATOR_HH
