#include "src/accel/accel_config.hh"

#include <vector>

#include "src/sim/log.hh"

namespace gmoms
{

namespace
{

void
validateBank(const char* which, const MomsBankConfig& b,
             std::vector<std::string>& problems)
{
    const std::string p = std::string(which) + " bank: ";
    if (b.num_mshrs == 0)
        problems.push_back(p + "num_mshrs must be > 0 (a bank with no "
                               "MSHRs can never miss)");
    if (!b.assoc_mshr && b.mshr_tables == 0)
        problems.push_back(p + "mshr_tables must be > 0 for the cuckoo "
                               "MSHR file");
    if (!b.assoc_mshr && b.mshr_tables > 0 &&
        b.num_mshrs % b.mshr_tables != 0)
        problems.push_back(
            p + "num_mshrs must be a multiple of mshr_tables (the "
                "cuckoo ways partition the file evenly); got " +
            std::to_string(b.num_mshrs) + " MSHRs over " +
            std::to_string(b.mshr_tables) + " tables");
    if (b.num_subentries == 0)
        problems.push_back(p + "num_subentries must be > 0");
    if (b.req_queue_depth == 0 || b.resp_queue_depth == 0)
        problems.push_back(p + "request/response queue depths must be "
                               "> 0");
    if (b.req_latency == 0 || b.resp_latency == 0)
        problems.push_back(p + "req/resp latencies must be >= 1 (the "
                               "engine's token-visibility invariant "
                               "requires every link latency >= 1 cycle)");
    if (b.cache_bytes > 0 && b.cache_ways == 0)
        problems.push_back(p + "cache_ways must be > 0 when a cache "
                               "array is present (set cache_bytes = 0 "
                               "to disable the array instead)");
}

} // namespace

std::vector<std::string>
AccelConfig::validateProblems() const
{
    std::vector<std::string> problems;

    if (num_pes == 0)
        problems.push_back("num_pes must be > 0");

    switch (mem.kind) {
      case MemKind::Ddr4:
        if (mem.channels == 0 || mem.channels > 8)
            problems.push_back(
                "mem.channels must be in [1, 8] for DDR4 (the f1 shell "
                "exposes at most 4; 8 covers dual-card what-ifs); got " +
                std::to_string(mem.channels));
        break;
      case MemKind::Hbm2:
        if (mem.channels < 2 || mem.channels > 32)
            problems.push_back(
                "mem.channels must be in [2, 32] for HBM2 (pseudo-"
                "channels come in pairs; one 8-high stack exposes 32); "
                "got " + std::to_string(mem.channels));
        break;
      default:
        problems.push_back("mem.kind must be Ddr4 or Hbm2");
        break;
    }
    if (mem.interleave_bytes < kLineBytes ||
        mem.interleave_bytes > kInterleaveBytes ||
        !isPow2(mem.interleave_bytes))
        problems.push_back(
            "mem.interleave_bytes must be a power of two in [" +
            std::to_string(kLineBytes) + ", " +
            std::to_string(kInterleaveBytes) +
            "] (at least one cache line, at most the DRAM-image "
            "section alignment); got " +
            std::to_string(mem.interleave_bytes));
    if (mem.timing.row_bytes == 0 || !isPow2(mem.timing.row_bytes))
        problems.push_back(
            "mem.timing.row_bytes must be a nonzero power of two (the "
            "open-row tracker masks addresses); got " +
            std::to_string(mem.timing.row_bytes));
    if (mem.timing.bus_bytes_per_cycle == 0)
        problems.push_back("mem.timing.bus_bytes_per_cycle must be > 0");
    if (mem.timing.num_banks == 0)
        problems.push_back("mem.timing.num_banks must be > 0");
    if (mem.timing.port_queue_depth == 0 ||
        mem.timing.resp_queue_depth == 0)
        problems.push_back("mem.timing port/response queue depths must "
                           "be > 0");
    if (moms.dynaburst &&
        static_cast<std::uint64_t>(moms.dynaburst_cfg.window_lines) *
                kLineBytes > mem.interleave_bytes)
        problems.push_back(
            "moms.dynaburst_cfg.window_lines (" +
            std::to_string(moms.dynaburst_cfg.window_lines) +
            " lines) must fit in one interleave unit (" +
            std::to_string(mem.interleave_bytes) +
            " B): assembled bursts may not straddle channels");

    if (nd == 0) {
        problems.push_back("nd (destination interval) must be > 0");
    } else {
        if (ns == 0 || ns % nd != 0)
            problems.push_back(
                "ns must be a nonzero multiple of nd (destination "
                "intervals may never straddle source intervals); got "
                "nd=" + std::to_string(nd) + ", ns=" +
                std::to_string(ns));
        if (nd > 32768)
            problems.push_back("nd must be <= 32768: the compressed "
                               "edge word carries a 15-bit destination "
                               "offset; got " + std::to_string(nd));
        if (ns > 65536)
            problems.push_back("ns must be <= 65536: the compressed "
                               "edge word carries a 16-bit source "
                               "offset; got " + std::to_string(ns));
    }

    if (max_threads == 0)
        problems.push_back("max_threads must be > 0 (no outstanding "
                           "source reads means no progress)");
    if (edge_burst_lines == 0 || max_edge_bursts == 0)
        problems.push_back("edge_burst_lines and max_edge_bursts must "
                           "be > 0 (PEs stream edges in bursts)");
    if (init_burst_lines == 0)
        problems.push_back("init_burst_lines must be > 0");
    if (init_outstanding_bursts == 0)
        problems.push_back("init_outstanding_bursts must be > 0 (no "
                           "outstanding init bursts means no node "
                           "data ever arrives)");
    if (nodes_per_cycle == 0)
        problems.push_back("nodes_per_cycle must be > 0");
    if (max_cycles == 0)
        problems.push_back("max_cycles must be > 0");

    const bool has_shared =
        moms.topology != MomsConfig::Topology::Private;
    if (has_shared) {
        if (mem.channels > 0 &&
            (moms.num_shared_banks == 0 ||
             moms.num_shared_banks % mem.channels != 0))
            problems.push_back(
                "shared bank count must be a nonzero multiple of the "
                "channel count (static bank-to-channel binding, "
                "Section IV-B); got " +
                std::to_string(moms.num_shared_banks) + " banks on " +
                std::to_string(mem.channels) + " channels");
        if (moms.crossbar_queue_depth == 0)
            problems.push_back("moms.crossbar_queue_depth must be > 0");
        if (moms.crossing_latency == 0)
            problems.push_back("moms.crossing_latency must be >= 1 "
                               "(link latency contract)");
        validateBank("shared", moms.shared_bank, problems);
    }
    if (moms.topology != MomsConfig::Topology::Shared)
        validateBank("private", moms.private_bank, problems);

    if (telemetry.enabled && telemetry.window_cycles == 0)
        problems.push_back("telemetry.window_cycles must be > 0 when "
                           "telemetry is enabled");
    if (checks.enabled && checks.watchdog_interval == 0)
        problems.push_back("checks.watchdog_interval must be > 0 when "
                           "checks are enabled");

    if (cluster.boards == 0 ||
        cluster.boards > ClusterConfig::kMaxBoards)
        problems.push_back(
            "cluster.boards must be in [1, " +
            std::to_string(ClusterConfig::kMaxBoards) +
            "] (1 = single board); got " +
            std::to_string(cluster.boards));
    if (cluster.mode != ClusterConfig::Mode::Bsp &&
        cluster.mode != ClusterConfig::Mode::Async)
        problems.push_back("cluster.mode must be Bsp or Async");
    if (cluster.partitioner != ClusterConfig::Partitioner::BlockEdges &&
        cluster.partitioner != ClusterConfig::Partitioner::RoundRobin)
        problems.push_back("cluster.partitioner must be BlockEdges or "
                           "RoundRobin");
    if (cluster.enabled()) {
        if (cluster.link_bytes_per_cycle == 0 ||
            cluster.link_bytes_per_cycle > 4096)
            problems.push_back(
                "cluster.link_bytes_per_cycle must be in [1, 4096] "
                "(a serial link, not a magic zero-cost wire); got " +
                std::to_string(cluster.link_bytes_per_cycle));
        if (cluster.link_latency == 0 || cluster.link_latency > 1'000'000)
            problems.push_back(
                "cluster.link_latency must be in [1, 1000000] cycles "
                "(the engine's link-latency contract requires >= 1); "
                "got " + std::to_string(cluster.link_latency));
        if (cluster.link_credits == 0)
            problems.push_back("cluster.link_credits must be > 0 (a "
                               "pair with no credits can never send)");
        if (cluster.link_max_packet_bytes <
            ClusterConfig::kUpdateBytes)
            problems.push_back(
                "cluster.link_max_packet_bytes must hold at least one "
                "update (" +
                std::to_string(ClusterConfig::kUpdateBytes) +
                " bytes); got " +
                std::to_string(cluster.link_max_packet_bytes));
    }

    return problems;
}

void
AccelConfig::validate() const
{
    const std::vector<std::string> problems = validateProblems();
    if (problems.empty())
        return;
    std::string msg = "invalid AccelConfig (" + label() + "):";
    for (const std::string& p : problems)
        msg += "\n  - " + p;
    fatal(msg);
}

AccelConfig
AccelConfig::preset(MomsConfig moms, std::uint32_t pes,
                    std::uint32_t channels)
{
    AccelConfig cfg;
    cfg.num_pes = pes;
    cfg.mem = MemSubstrateConfig::ddr4(channels);
    cfg.moms = std::move(moms);
    return cfg;
}

AccelConfig
AccelConfig::paper18x16TwoLevel()
{
    return preset(MomsConfig::twoLevel(16, 2048), 18);
}

AccelConfig
AccelConfig::sharedMoms()
{
    return preset(MomsConfig::shared(16), 16);
}

AccelConfig
AccelConfig::privateMoms()
{
    return preset(MomsConfig::privateOnly(), 20);
}

AccelConfig
AccelConfig::traditionalNbc()
{
    return preset(MomsConfig::traditionalTwoLevel(16), 16);
}

AccelConfig
AccelConfig::hbmTwoLevel(std::uint32_t pseudo_channels,
                         std::uint32_t pes,
                         std::uint64_t private_cache_bytes)
{
    // One shared bank per pseudo-channel keeps the static binding
    // (banks % channels == 0) at its finest legal grain, so every
    // narrow bus has a dedicated miss handler in front of it.
    AccelConfig cfg = preset(
        MomsConfig::twoLevel(pseudo_channels, private_cache_bytes),
        pes);
    cfg.mem = MemSubstrateConfig::hbm2(pseudo_channels);
    // The 256 B interleave caps every node-array burst at a quarter
    // line-count of the DDR4 unit; pipeline init bursts so the fine
    // stripe costs bandwidth, not round-trip latency.
    cfg.init_outstanding_bursts = 8;
    return cfg;
}

} // namespace gmoms
