#include "src/accel/scheduler.hh"

#include "src/sim/log.hh"

namespace gmoms
{

Scheduler::Scheduler(const PartitionedGraph& pg, const GraphLayout& layout,
                     std::uint32_t qd_limit)
    : pg_(&pg), layout_(&layout),
      qd_(qd_limit == 0 ? pg.qd() : qd_limit),
      updated_(qd_limit == 0 ? pg.qd() : qd_limit, false)
{
    if (qd_ > pg.qd())
        panic("Scheduler: qd_limit exceeds the partition's qd");
    next_ = qd_;           // no iteration armed yet
    completed_ = qd_;
}

void
Scheduler::startIteration()
{
    if (!iterationDone())
        panic("startIteration while jobs are outstanding");
    next_ = 0;
    completed_ = 0;
    updated_.assign(qd_, false);
}

std::optional<Job>
Scheduler::pull()
{
    if (next_ >= qd_)
        return std::nullopt;
    const std::uint32_t d = next_++;
    Job job;
    job.d = d;
    job.base = pg_->dstIntervalBase(d);
    job.count = pg_->dstIntervalNodes(d);
    job.qs = pg_->qs();
    job.v_in_base = layout_->vInAddr(job.base);
    job.v_in_global = layout_->vInBase();
    job.v_out_base = layout_->vOutAddr(job.base);
    job.v_const_base =
        layout_->hasConst() ? layout_->vConstAddr(job.base) : 0;
    job.ptr_base = layout_->ptrAddr(0, d);
    job.packed = layout_->packed();
    return job;
}

void
Scheduler::complete(std::uint32_t d, bool updated)
{
    if (d >= qd_)
        panic("complete: bad interval index");
    updated_[d] = updated;
    ++completed_;
    if (completed_ > qd_)
        panic("more completions than jobs");
}

bool
Scheduler::anyUpdated() const
{
    for (bool u : updated_)
        if (u)
            return true;
    return false;
}

} // namespace gmoms
