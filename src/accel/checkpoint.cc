#include "src/accel/checkpoint.hh"

#include <sstream>

#include "src/sim/log.hh"

namespace gmoms
{

namespace
{

/** FNV-1a 64-bit over explicitly fed words (field-order stable). */
struct Fnv
{
    std::uint64_t h = 1469598103934665603ull;

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xffu;
            h *= 1099511628211ull;
        }
    }
};

void
mixBank(Fnv& f, const MomsBankConfig& b)
{
    f.mix(b.cache_bytes);
    f.mix(b.cache_ways);
    f.mix(b.num_mshrs);
    f.mix(b.mshr_tables);
    f.mix(b.max_kicks);
    f.mix(b.assoc_mshr ? 1 : 0);
    f.mix(b.num_subentries);
    f.mix(b.max_subentries_per_miss);
    f.mix(b.req_queue_depth);
    f.mix(b.resp_queue_depth);
    f.mix(b.req_latency);
    f.mix(b.resp_latency);
}

std::size_t
graphBytes(const CooGraph& g)
{
    return g.numEdges() * sizeof(Edge) +
           static_cast<std::size_t>(g.numNodes()) * sizeof(NodeId);
}

} // namespace

std::uint64_t
configFingerprint(const AccelConfig& cfg)
{
    Fnv f;
    f.mix(cfg.max_cycles);
    f.mix(cfg.num_pes);
    f.mix(static_cast<std::uint64_t>(cfg.mem.kind));
    f.mix(cfg.mem.channels);
    f.mix(cfg.mem.interleave_bytes);
    f.mix(cfg.packed_edges ? 1 : 0);
    f.mix(cfg.nd);
    f.mix(cfg.ns);
    f.mix(cfg.max_threads);
    f.mix(cfg.edge_burst_lines);
    f.mix(cfg.max_edge_bursts);
    f.mix(cfg.init_burst_lines);
    f.mix(cfg.init_outstanding_bursts);
    f.mix(cfg.nodes_per_cycle);
    // MOMS hierarchy
    f.mix(static_cast<std::uint64_t>(cfg.moms.topology));
    f.mix(cfg.moms.num_shared_banks);
    mixBank(f, cfg.moms.shared_bank);
    mixBank(f, cfg.moms.private_bank);
    f.mix(cfg.moms.crossing_latency);
    f.mix(cfg.moms.crossbar_queue_depth);
    f.mix(cfg.moms.dynaburst ? 1 : 0);
    f.mix(cfg.moms.dynaburst_cfg.window_lines);
    f.mix(cfg.moms.dynaburst_cfg.wait_cycles);
    f.mix(cfg.moms.dynaburst_cfg.max_open_windows);
    // Memory substrate timing
    f.mix(cfg.mem.timing.bus_bytes_per_cycle);
    f.mix(cfg.mem.timing.request_overhead_cycles);
    f.mix(cfg.mem.timing.row_miss_extra_cycles);
    f.mix(cfg.mem.timing.load_latency_cycles);
    f.mix(cfg.mem.timing.num_banks);
    f.mix(cfg.mem.timing.row_bytes);
    f.mix(cfg.mem.timing.same_bank_gap_cycles);
    f.mix(cfg.mem.timing.port_queue_depth);
    f.mix(cfg.mem.timing.resp_queue_depth);
    f.mix(cfg.mem.timing.capacity_bytes);
    // Observability toggles change run *records* (telemetry summary,
    // check signatures), so they separate pool entries; engine knobs
    // (tick_threads, full_tick_engine) are bit-exact by contract and
    // deliberately NOT mixed in.
    f.mix(cfg.telemetry.enabled ? 1 : 0);
    f.mix(cfg.checks.enabled ? 1 : 0);
    f.mix(cfg.checks.enabled ? cfg.checks.watchdog_interval : 0);
    f.mix(cfg.checks.enabled && cfg.checks.shadow_memory ? 1 : 0);
    // Board topology: boards always separates entries; the mode,
    // partitioner and link knobs only matter once the cluster is
    // enabled (at boards == 1 they are ignored by construction, so
    // single-board sessions differing only there share checkpoints).
    f.mix(cfg.cluster.boards);
    if (cfg.cluster.enabled()) {
        f.mix(static_cast<std::uint64_t>(cfg.cluster.mode));
        f.mix(static_cast<std::uint64_t>(cfg.cluster.partitioner));
        f.mix(cfg.cluster.link_bytes_per_cycle);
        f.mix(cfg.cluster.link_latency);
        f.mix(cfg.cluster.link_credits);
        f.mix(cfg.cluster.link_max_packet_bytes);
    }
    return f.h;
}

std::optional<SessionResult>
SessionMemo::lookup(const std::string& key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = results_.find(key);
    if (it == results_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    return it->second;
}

void
SessionMemo::store(const std::string& key, const SessionResult& result)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = results_.emplace(key, result);
    (void)it;
    if (inserted)
        bytes_ += key.size() + result.values.size() * sizeof(double) +
                  result.run.raw_values.size() * sizeof(std::uint32_t) +
                  sizeof(SessionResult);
}

std::size_t
SessionMemo::bytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
}

std::uint64_t
SessionMemo::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

std::uint64_t
SessionMemo::misses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

struct SessionCheckpoint::State
{
    std::uint32_t version = kFormatVersion;
    AccelConfig config;
    std::uint64_t fingerprint = 0;
    std::shared_ptr<const CooGraph> src;
    std::shared_ptr<const std::vector<NodeId>> to_internal;
    std::shared_ptr<const std::vector<NodeId>> to_original;
    std::uint32_t weight_seed = 97;
    std::shared_ptr<const CooGraph> plain;
    std::shared_ptr<const CooGraph> weighted;
    std::shared_ptr<const PartitionedGraph> pg_plain;
    std::shared_ptr<const PartitionedGraph> pg_weighted;
    std::shared_ptr<SessionMemo> memo;
};

SessionCheckpoint
SessionCheckpoint::capture(Session& session, bool warm_weighted)
{
    session.ensurePlain();
    if (warm_weighted)
        session.ensureWeighted();
    if (!session.memo_)
        session.memo_ = std::make_shared<SessionMemo>();

    auto st = std::make_shared<State>();
    st->config = session.config_;
    st->fingerprint = configFingerprint(session.config_);
    st->src = session.src_;
    st->to_internal = session.to_internal_;
    st->to_original = session.to_original_;
    st->weight_seed = session.weight_seed_;
    st->plain = session.plain_;
    st->weighted = session.weighted_;
    st->pg_plain = session.pg_plain_;
    st->pg_weighted = session.pg_weighted_;
    st->memo = session.memo_;

    SessionCheckpoint cp;
    cp.state_ = std::move(st);
    return cp;
}

Session
SessionCheckpoint::restore() const
{
    if (!state_)
        fatal("SessionCheckpoint::restore on an empty checkpoint");
    if (state_->version != kFormatVersion)
        fatal("SessionCheckpoint: format version " +
              std::to_string(state_->version) + " does not match " +
              std::to_string(kFormatVersion));
    Session s;
    s.config_ = state_->config;
    s.src_ = state_->src;
    s.to_internal_ = state_->to_internal;
    s.to_original_ = state_->to_original;
    s.weight_seed_ = state_->weight_seed;
    s.plain_ = state_->plain;
    s.weighted_ = state_->weighted;
    s.pg_plain_ = state_->pg_plain;
    s.pg_weighted_ = state_->pg_weighted;
    s.memo_ = state_->memo;
    return s;
}

std::size_t
SessionCheckpoint::residentBytes() const
{
    if (!state_)
        return 0;
    // Approximate and double-count-free: views aliasing src (prep
    // None) are counted once.
    std::size_t total = sizeof(State);
    total += graphBytes(*state_->src);
    if (state_->plain && state_->plain != state_->src)
        total += graphBytes(*state_->plain);
    if (state_->weighted && state_->weighted != state_->src &&
        state_->weighted != state_->plain)
        total += graphBytes(*state_->weighted);
    // A partition re-buckets every edge once plus interval metadata.
    if (state_->pg_plain)
        total += graphBytes(*state_->plain);
    if (state_->pg_weighted)
        total += graphBytes(*state_->weighted);
    if (state_->to_internal)
        total += state_->to_internal->size() * sizeof(NodeId) * 2;
    if (state_->memo)
        total += state_->memo->bytes();
    return total;
}

std::uint64_t
SessionCheckpoint::fingerprint() const
{
    return state_ ? state_->fingerprint : 0;
}

const std::shared_ptr<SessionMemo>&
SessionCheckpoint::memo() const
{
    static const std::shared_ptr<SessionMemo> kNull;
    return state_ ? state_->memo : kNull;
}

std::string
ReplayDescriptor::serialize() const
{
    std::ostringstream os;
    os << "gmoms-replay v" << kVersion << " dataset=" << dataset
       << " prep=" << prep << " algo=" << algo
       << " iters=" << iterations << " source=" << source;
    if (!preset.empty())
        os << " preset=" << preset;
    os << " config=" << std::hex << config_fingerprint << std::dec;
    if (fail_cycle != 0)
        os << " fail_cycle=" << fail_cycle;
    return os.str();
}

std::optional<ReplayDescriptor>
ReplayDescriptor::parse(const std::string& s)
{
    std::istringstream is(s);
    std::string magic, vtag;
    is >> magic >> vtag;
    if (magic != "gmoms-replay" ||
        vtag != "v" + std::to_string(kVersion))
        return std::nullopt;
    ReplayDescriptor d;
    std::string tok;
    while (is >> tok) {
        const auto eq = tok.find('=');
        if (eq == std::string::npos)
            return std::nullopt;
        const std::string key = tok.substr(0, eq);
        const std::string val = tok.substr(eq + 1);
        try {
            if (key == "dataset")
                d.dataset = val;
            else if (key == "prep")
                d.prep = val;
            else if (key == "algo")
                d.algo = val;
            else if (key == "iters")
                d.iterations =
                    static_cast<std::uint32_t>(std::stoul(val));
            else if (key == "source")
                d.source = static_cast<NodeId>(std::stoul(val));
            else if (key == "preset")
                d.preset = val;
            else if (key == "config")
                d.config_fingerprint = std::stoull(val, nullptr, 16);
            else if (key == "fail_cycle")
                d.fail_cycle = std::stoull(val);
            // unknown keys: forward-compatible, ignored
        } catch (...) {
            return std::nullopt;
        }
    }
    return d;
}

} // namespace gmoms
