/**
 * @file
 * Dynamic job scheduler (Section IV-B/IV-E).
 *
 * One job per destination interval per iteration. PEs pull jobs whenever
 * idle, which is what makes the paper's cache-line hashing sufficient
 * for load balance (no static PE assignment as in ForeGraph/FabGraph).
 */

#ifndef GMOMS_ACCEL_SCHEDULER_HH
#define GMOMS_ACCEL_SCHEDULER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "src/graph/layout.hh"
#include "src/graph/partition.hh"

namespace gmoms
{

/** Parameters handed to a PE with a job (Section IV-B). */
struct Job
{
    std::uint32_t d = 0;      //!< destination interval index
    NodeId base = 0;          //!< first node of the interval
    std::uint32_t count = 0;  //!< nodes in the interval
    std::uint32_t qs = 0;     //!< source intervals to scan
    Addr v_in_base = 0;       //!< V_DRAM,in base of this interval
    Addr v_in_global = 0;     //!< V_DRAM,in array base (source reads)
    Addr v_out_base = 0;      //!< V_DRAM,out base of this interval
    Addr v_const_base = 0;    //!< V_const base (0 when unused)
    Addr ptr_base = 0;        //!< first edge-pointer entry of the job
    bool packed = false;      //!< shards use the packed half-word CSR
};

class Scheduler
{
  public:
    /**
     * @param qd_limit  Only the first qd_limit destination intervals
     *   become jobs (0 = all). Cluster boards pass their owned-interval
     *   count so the ghost tail of the local id space — sources only,
     *   never destinations — is neither initialized nor written back.
     */
    Scheduler(const PartitionedGraph& pg, const GraphLayout& layout,
              std::uint32_t qd_limit = 0);

    /** Arm a new iteration: every destination interval becomes a job.
     *  Job base addresses are re-derived from the (possibly swapped)
     *  layout. */
    void startIteration();

    /** Next unclaimed job, if any (PEs call this when idle). */
    std::optional<Job> pull();

    /** True while pull() would hand out a job (side-effect-free; used
     *  by idle PEs' quiescence checks). */
    bool hasJobs() const { return next_ < qd_; }

    /** PE completion callback with the interval's updated flag. */
    void complete(std::uint32_t d, bool updated);

    /** All jobs of the current iteration completed. */
    bool iterationDone() const { return completed_ == qd_; }

    /** Any interval updated during the current iteration. */
    bool anyUpdated() const;

    /** Per-destination-interval updated flags of the last iteration. */
    const std::vector<bool>& updatedFlags() const { return updated_; }

    /** Jobs completed per PE would be tracked by the caller; here we
     *  count total pulls for balance statistics. */
    std::uint32_t jobsPulled() const { return next_; }

    /** Destination intervals actually scheduled per iteration. */
    std::uint32_t numJobs() const { return qd_; }

  private:
    const PartitionedGraph* pg_;
    const GraphLayout* layout_;
    std::uint32_t qd_ = 0;         //!< intervals scheduled (<= pg qd)
    std::uint32_t next_ = 0;       //!< next interval to hand out
    std::uint32_t completed_ = 0;
    std::vector<bool> updated_;
};

} // namespace gmoms

#endif // GMOMS_ACCEL_SCHEDULER_HH
