/**
 * @file
 * FPGA resource and operating-frequency models.
 *
 * The paper ships on a Virtex UltraScale+ VU9P (AWS f1) spanning three
 * SLRs, with 25-35% of the bottom/central SLRs reserved for the shell.
 * We cannot place-and-route, so Fig. 17 (resource utilization) and the
 * frequency behaviour (196-227 MHz shipped designs, lower with more SLR
 * crossings) are reproduced with per-component cost formulas calibrated
 * against the paper's reported totals. The formulas keep the monotone
 * relationships that drive the paper's conclusions: interconnect
 * dominates LUTs, PEs and MOMS dominate BRAM/URAM, and frequency
 * degrades with per-SLR utilization and die-crossing count.
 */

#ifndef GMOMS_ACCEL_RESOURCE_MODEL_HH
#define GMOMS_ACCEL_RESOURCE_MODEL_HH

#include <cstdint>
#include <string>

#include "src/accel/accel_config.hh"
#include "src/algo/spec.hh"

namespace gmoms
{

/** Absolute resource counts of one component group. */
struct ResourceVector
{
    double luts = 0;
    double ffs = 0;
    double bram36 = 0;  //!< 36 Kib BRAM blocks
    double uram = 0;    //!< 288 Kib URAM blocks
    double dsp = 0;

    ResourceVector&
    operator+=(const ResourceVector& o)
    {
        luts += o.luts;
        ffs += o.ffs;
        bram36 += o.bram36;
        uram += o.uram;
        dsp += o.dsp;
        return *this;
    }
};

/** VU9P totals (per device; three SLRs). */
struct DeviceResources
{
    double luts = 1'182'000;
    double ffs = 2'364'000;
    double bram36 = 2'160;
    double uram = 960;
    double dsp = 6'840;
    /** Fraction of the device kept by the AWS shell. */
    double shell_fraction = 0.22;
};

/** Resource breakdown of a full accelerator configuration. */
struct ResourceBreakdown
{
    ResourceVector pes;
    ResourceVector moms;
    ResourceVector interconnect;
    ResourceVector total;

    /** Utilization (0-1) of the non-shell device area. */
    double lut_util = 0, ff_util = 0, bram_util = 0, uram_util = 0,
           dsp_util = 0;
    /** Highest per-SLR LUT utilization (routability proxy). */
    double peak_slr_lut_util = 0;
    /** Number of inter-SLR handshake crossings. */
    std::uint32_t slr_crossings = 0;
};

ResourceBreakdown estimateResources(const AccelConfig& cfg,
                                    const AlgoSpec& spec,
                                    const DeviceResources& dev = {});

/**
 * Modelled post-route frequency in MHz. The target is 250 MHz; designs
 * degrade with peak SLR utilization and crossing count, bottoming out
 * near 150 MHz (the paper discards designs under 185 MHz).
 */
double modelFrequencyMhz(const AccelConfig& cfg, const AlgoSpec& spec);

/** Paper threshold below which a design point is discarded (Fig. 11). */
inline constexpr double kMinFrequencyMhz = 185.0;

/**
 * Modelled FPGA power in watts (excluding external memory, matching
 * the paper's fpga-describe-local-image measurement of 23 W for the
 * shipped designs). Scales with occupied logic, clock rate and BRAM/
 * URAM activity; calibrated so the standard 16/16 designs land at
 * ~23 W.
 */
double modelPowerWatts(const AccelConfig& cfg, const AlgoSpec& spec);

} // namespace gmoms

#endif // GMOMS_ACCEL_RESOURCE_MODEL_HH
