#include "src/accel/accelerator.hh"

#include "src/sim/log.hh"

namespace gmoms
{

Accelerator::Accelerator(const AccelConfig& cfg,
                         const PartitionedGraph& pg, const AlgoSpec& spec)
    : cfg_(cfg), pg_(&pg), spec_(spec)
{
    if (cfg_.nd != pg.nd() || cfg_.ns != pg.ns()) {
        // Follow the partition geometry: the PE BRAM must fit it.
        cfg_.nd = pg.nd();
        cfg_.ns = pg.ns();
    }
    cfg_.validate();
    if (spec_.weighted != pg.weighted())
        fatal("algorithm/graph weighted mismatch");
    if (cfg_.full_tick_engine)
        engine_.setFullTick(true);
    engine_.setTickThreads(cfg_.tick_threads);  // 0 = keep environment

    // Memory ports: one DMA port per PE, then the MOMS's ports.
    const std::uint32_t dma_ports = cfg_.num_pes;
    const std::uint32_t moms_ports =
        cfg_.moms.memPortsNeeded(cfg_.num_pes);
    mem_ = std::make_unique<MemorySystem>(engine_, cfg_.mem,
                                          dma_ports + moms_ports);

    // Build the DRAM image (Fig. 4).
    GraphLayout::Options opts;
    opts.has_const = spec_.has_const;
    opts.synchronous = spec_.synchronous;
    opts.packed = cfg_.packed_edges;
    opts.init_value = [this](NodeId n) { return spec_.initialValue(n); };
    if (spec_.has_const)
        opts.const_value = [this](NodeId n) {
            return spec_.constValue(n);
        };
    layout_ = std::make_unique<GraphLayout>(pg, opts);
    layout_->build(pg, mem_->store());

    moms_ = std::make_unique<MomsSystem>(engine_, *mem_, dma_ports,
                                         cfg_.num_pes, cfg_.moms);
    sched_ = std::make_unique<Scheduler>(pg, *layout_);

    for (std::uint32_t p = 0; p < cfg_.num_pes; ++p) {
        pes_.push_back(std::make_unique<Pe>(
            engine_, "pe" + std::to_string(p), p, cfg_, spec_, *sched_,
            mem_->port(p), moms_->pePort(p), mem_->store()));
        engine_.add(pes_.back().get());
    }

    if (cfg_.telemetry.enabled) {
        TelemetryConfig tcfg = cfg_.telemetry;
        if (tcfg.label.empty())
            tcfg.label = cfg_.label();
        tele_ = std::make_unique<Telemetry>(engine_, tcfg);
        moms_->registerTelemetry(*tele_);
        for (auto& pe : pes_)
            pe->registerTelemetry(*tele_);
        for (std::uint32_t c = 0; c < cfg_.mem.channels; ++c)
            mem_->channel(c).registerTelemetry(*tele_);
    }

    if (cfg_.checks.enabled) {
        if (cfg_.checks.shadow_memory) {
            shadow_ = std::make_unique<ShadowMemory>(
                mem_->store(), *layout_, pg.numNodes());
            for (auto& pe : pes_)
                pe->attachShadow(shadow_.get());
        }
        CheckHarness::Wiring wiring;
        wiring.moms = moms_.get();
        wiring.mem = mem_.get();
        wiring.sched = sched_.get();
        wiring.pes = &pes_;
        wiring.telemetry = tele_.get();
        check_ = std::make_unique<CheckHarness>(engine_, cfg_.checks,
                                                wiring);
    }
}

Accelerator::~Accelerator() = default;

bool
Accelerator::updateActiveFlags()
{
    // active_srcs_next[s] = true iff any destination interval that
    // overlaps source interval s was updated this iteration.
    std::vector<bool> active(pg_->qs(), false);
    const auto& updated = sched_->updatedFlags();
    bool any = false;
    for (std::uint32_t d = 0; d < pg_->qd(); ++d) {
        if (!updated[d])
            continue;
        any = true;
        const NodeId base = pg_->dstIntervalBase(d);
        const NodeId last = base + pg_->dstIntervalNodes(d) - 1;
        for (std::uint32_t s = base / pg_->ns(); s <= last / pg_->ns();
             ++s)
            active[s] = true;
    }
    for (std::uint32_t s = 0; s < pg_->qs(); ++s)
        for (std::uint32_t d = 0; d < pg_->qd(); ++d)
            layout_->setActive(mem_->store(), s, d, active[s]);
    return any;
}

RunResult
Accelerator::run()
{
    RunResult result;
    bool cont = true;

    for (std::uint32_t iter = 0;
         iter < spec_.max_iterations && cont; ++iter) {
        if (tele_)
            tele_->beginPhase("iter" + std::to_string(iter));
        sched_->startIteration();
        // Both predicates here are pure (read simulation state only),
        // so the engine may fast-forward across all-quiescent gaps.
        const bool done = engine_.runUntil(
            [this] { return sched_->iterationDone(); }, cfg_.max_cycles,
            Engine::Poll::OnEvents);
        if (!done) {
            if (check_)
                check_->failBudget(cfg_.max_cycles);
            fatal("accelerator exceeded the cycle budget; deadlock or "
                  "undersized budget");
        }
        ++result.iterations;

        cont = updateActiveFlags();
        if (spec_.synchronous)
            layout_->swapInOut();
        // Node arrays changed (swap or in-place update): cached source
        // values are stale.
        moms_->invalidateCaches();
    }

    // Let the queues fully drain (writes are already acked, but DRAM
    // response queues may hold stale timing tokens).
    if (tele_)
        tele_->beginPhase("drain");
    engine_.runUntil([this] { return mem_->idle() && moms_->idle(); },
                     100000, Engine::Poll::OnEvents);
    if (check_)
        check_->verifyDrained();
    if (tele_) {
        tele_->endPhase();
        result.telemetry = tele_->finalize();
    }

    result.cycles = engine_.now();
    result.packed_layout = layout_->packed();
    result.edge_section_bytes = layout_->edgeSectionBytes();
    result.dram_bytes_read = mem_->totalBytesRead();
    result.dram_bytes_written = mem_->totalBytesWritten();
    result.moms_hit_rate = moms_->hitRate();
    result.moms_requests = moms_->totalRequests();
    result.moms_secondary_misses = moms_->totalSecondaryMisses();
    result.moms_lines_from_mem = moms_->totalLinesFromMem();
    for (const auto& pe : pes_) {
        result.edges_processed += pe->stats().edges_processed;
        result.pe_raw_stalls += pe->stats().raw_stalls;
    }
    result.raw_values.resize(pg_->numNodes());
    for (NodeId n = 0; n < pg_->numNodes(); ++n)
        result.raw_values[n] = mem_->store().read32(layout_->vInAddr(n));
    return result;
}

} // namespace gmoms
