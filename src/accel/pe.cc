#include "src/accel/pe.hh"

#include <algorithm>

#include "src/check/shadow_memory.hh"
#include "src/graph/layout.hh"
#include "src/sim/log.hh"

namespace gmoms
{

Pe::Pe(const Engine& engine, std::string name, std::uint32_t id,
       const AccelConfig& cfg, const AlgoSpec& spec, Scheduler& sched,
       MemPort dma, SourcePort& moms, BackingStore& store)
    : Component(std::move(name)), engine_(engine), id_(id), cfg_(&cfg),
      spec_(&spec), sched_(&sched), dma_(dma), moms_(&moms),
      store_(&store), edge_pending_(cfg.max_edge_bursts)
{
    bram_.resize(cfg.nd);
    vconst_tmp_.resize(cfg.nd);
    if (spec.weighted) {
        // Fig. 10a: free-ID queue plus state memory.
        free_ids_.reserve(cfg.max_threads);
        for (std::uint32_t i = 0; i < cfg.max_threads; ++i)
            free_ids_.push_back(cfg.max_threads - 1 - i);
        thread_state_.resize(cfg.max_threads);
    }
    // Wake on DMA/MOMS responses and on backpressure release.
    dma_.bindClient(this);
    moms_->bindClient(this);
    il_ = dma_.interleaveBytes();
}

Cycle
Pe::nextActivity() const
{
    // A response in flight anywhere (DMA or MOMS, poppable or still
    // travelling through its queue) bounds the next useful tick: the
    // tick at its arrival cycle does real work. Reporting in-flight
    // arrivals here — not just relying on push hooks — keeps the wake
    // alive across intermediate ticks.
    const Cycle resp = std::min(dma_.responseReadyCycle(),
                                moms_->responseReadyCycle());
    return std::min(resp, phaseActivity());
}

Cycle
Pe::phaseActivity() const
{
    switch (phase_) {
      case Phase::Idle:
        return sched_->hasJobs() ? 0 : kCycleNever;
      case Phase::FetchPtrs: {
        const std::uint64_t total = 8ull * job_.qs;
        if (ptr_bytes_received_ >= total)
            return 0;  // phase transition pending
        if (ptr_bytes_requested_ < total &&
            dma_.canSend(job_.ptr_base + ptr_bytes_requested_))
            return 0;
        return kCycleNever;  // waiting on pointer data / port space
      }
      case Phase::Init:
        if (init_nodes_consumed_ >= job_.count)
            return 0;  // phase transition pending
        if (4 * (init_nodes_consumed_ + 1) <= init_bytes_received_)
            return 0;  // nodes to consume
        if (init_bursts_inflight_ < cfg_->init_outstanding_bursts &&
            init_bytes_requested_ < init_bytes_total_ &&
            dma_.canSend(init_region_base_ + init_bytes_requested_))
            return 0;
        return kCycleNever;  // waiting on the outstanding bursts
      case Phase::Stream:
        // A parked response (RAW hazard) or a non-empty decode queue
        // counts stalls every cycle: stay active.
        if (pending_resp_ || !decode_q_.empty())
            return 0;
        if (edge_bursts_inflight_ < cfg_->max_edge_bursts &&
            !shards_.empty() && dma_.canSend(shards_.front().addr))
            return 0;
        if (shards_.empty() && edge_pending_.empty() &&
            threads_outstanding_ == 0)
            return 0;  // phase transition pending
        return kCycleNever;  // waiting on edge bursts / MOMS threads
      case Phase::Writeback:
        // Staging progresses every cycle until the interval is fully
        // written (rollback loops included — legacy re-stages them).
        if (wb_nodes_written_ < job_.count || wb_bytes_staged_ != 0)
            return 0;
        if (wb_writes_unacked_ == 0)
            return 0;  // phase transition pending
        return kCycleNever;  // waiting on write acks
    }
    return 0;
}

void
Pe::catchUp(Cycle upto)
{
    if (upto <= cycle_accounted_until_)
        return;
    // Ticks skipped while asleep would only have bumped the occupancy
    // counters: idle when parked without a job, busy in any phase.
    const std::uint64_t gap = upto - cycle_accounted_until_;
    if (phase_ == Phase::Idle)
        stats_.idle_cycles += gap;
    else
        stats_.busy_cycles += gap;
    cycle_accounted_until_ = upto;
}

void
Pe::tick()
{
    catchUp(engine_.now());
    cycle_accounted_until_ = engine_.now() + 1;

    drainDmaResponses();

    switch (phase_) {
      case Phase::Idle:
        if (std::optional<Job> job = sched_->pull()) {
            startJob(*job);
            ++stats_.busy_cycles;
        } else {
            ++stats_.idle_cycles;
        }
        break;
      case Phase::FetchPtrs:
        tickFetchPtrs();
        ++stats_.busy_cycles;
        break;
      case Phase::Init:
        tickInit();
        ++stats_.busy_cycles;
        break;
      case Phase::Stream:
        tickStream();
        ++stats_.busy_cycles;
        break;
      case Phase::Writeback:
        tickWriteback();
        ++stats_.busy_cycles;
        break;
    }
}

void
Pe::drainDmaResponses()
{
    while (std::optional<MemResp> resp = dma_.receive()) {
        switch (dmaKind(resp->tag)) {
          case DmaKind::Ptr:
            ptr_bytes_received_ += resp->bytes;
            break;
          case DmaKind::InitConst:
          case DmaKind::InitIn: {
            --init_bursts_inflight_;
            // Consumption is strictly sequential, so a completion that
            // overtakes the in-order prefix (bursts on different
            // channels finish out of order) parks until the gap fills.
            init_ooo_.emplace_back(resp->addr, resp->bytes);
            bool advanced = true;
            while (advanced) {
                advanced = false;
                for (std::size_t i = 0; i < init_ooo_.size(); ++i) {
                    if (init_ooo_[i].first !=
                        init_region_base_ + init_bytes_received_)
                        continue;
                    init_bytes_received_ += init_ooo_[i].second;
                    init_ooo_[i] = init_ooo_.back();
                    init_ooo_.pop_back();
                    advanced = true;
                    break;
                }
            }
            break;
          }
          case DmaKind::Edge: {
            const std::uint64_t seq = resp->tag & 0xffffffffffffffull;
            EdgeSegment* seg = edge_pending_.find(seq);
            if (seg == nullptr)
                panic("edge burst response with unknown sequence");
            if (shadow_)
                shadow_->checkEdgeSegment(seg->addr, 4ull * seg->words);
            decode_q_.push_back(*seg);
            edge_pending_.erase(seq);
            --edge_bursts_inflight_;
            break;
          }
          case DmaKind::Write:
            --wb_writes_unacked_;
            break;
        }
    }
}

void
Pe::startJob(const Job& job)
{
    job_ = job;
    updated_ = false;
    phase_ = Phase::FetchPtrs;
    ptr_bytes_requested_ = 0;
    ptr_bytes_received_ = 0;
}

void
Pe::tickFetchPtrs()
{
    const std::uint64_t total = 8ull * job_.qs;
    while (ptr_bytes_requested_ < total) {
        const Addr a = job_.ptr_base + ptr_bytes_requested_;
        const std::uint64_t chunk =
            std::min(total - ptr_bytes_requested_, il_ - a % il_);
        if (!dma_.send(MemReq{a, static_cast<std::uint32_t>(chunk),
                              dmaTag(DmaKind::Ptr, 0), false}))
            break;
        ptr_bytes_requested_ += chunk;
    }
    if (ptr_bytes_received_ < total)
        return;

    // All pointers arrived: collect active, non-empty shards.
    shards_.clear();
    for (std::uint32_t s = 0; s < job_.qs; ++s) {
        const std::uint64_t p = store_->read64(job_.ptr_base + 8ull * s);
        if (!edgeptr::isActive(p))
            continue;  // Template 1 line 10: skip inactive sources
        if (edgeptr::sizeWords(p) == 0)
            continue;
        shards_.push_back(ShardCursor{s, 4 * edgeptr::startWord(p),
                                      edgeptr::sizeWords(p)});
    }

    // Arm node initialization: V_const first (if present), then V_in.
    init_const_stage_ = spec_->has_const;
    init_region_base_ =
        init_const_stage_ ? job_.v_const_base : job_.v_in_base;
    init_bytes_total_ = 4ull * job_.count;
    init_bytes_requested_ = 0;
    init_bytes_received_ = 0;
    init_nodes_consumed_ = 0;
    init_bursts_inflight_ = 0;
    init_ooo_.clear();
    phase_ = Phase::Init;
}

void
Pe::tickInit()
{
    // Keep up to init_outstanding_bursts node-array bursts in flight
    // (in-order consumption, Section IV-D). One is enough on DDR4,
    // where a burst carries up to init_burst_lines full lines; on
    // HBM's 256 B interleave units the pipelining covers the
    // round-trip latency that a lone small burst would expose.
    while (init_bursts_inflight_ < cfg_->init_outstanding_bursts &&
           init_bytes_requested_ < init_bytes_total_) {
        const Addr a = init_region_base_ + init_bytes_requested_;
        const std::uint64_t chunk = std::min(
            {static_cast<std::uint64_t>(cfg_->init_burst_lines) *
                 kLineBytes,
             init_bytes_total_ - init_bytes_requested_,
             il_ - a % il_});
        const DmaKind kind = init_const_stage_ ? DmaKind::InitConst
                                               : DmaKind::InitIn;
        if (!dma_.send(MemReq{a, static_cast<std::uint32_t>(chunk),
                              dmaTag(kind, 0), false}))
            break;
        init_bytes_requested_ += chunk;
        ++init_bursts_inflight_;
    }

    // Consume up to nodes_per_cycle received node values.
    std::uint32_t budget = cfg_->nodes_per_cycle;
    while (budget > 0 &&
           4 * (init_nodes_consumed_ + 1) <= init_bytes_received_) {
        const std::uint64_t i = init_nodes_consumed_;
        const std::uint32_t raw =
            store_->read32(init_region_base_ + 4 * i);
        if (init_const_stage_) {
            vconst_tmp_[i] = raw;
        } else {
            bram_[i] = spec_->init(
                spec_->has_const ? vconst_tmp_[i] : 0, raw);
        }
        ++init_nodes_consumed_;
        --budget;
    }

    if (init_nodes_consumed_ < job_.count)
        return;

    if (init_const_stage_) {
        // Switch to the V_in stage.
        init_const_stage_ = false;
        init_region_base_ = job_.v_in_base;
        init_bytes_requested_ = 0;
        init_bytes_received_ = 0;
        init_nodes_consumed_ = 0;
        init_bursts_inflight_ = 0;
        init_ooo_.clear();
        return;
    }
    phase_ = Phase::Stream;
}

bool
Pe::rawHazard(std::uint32_t dst_off) const
{
    if (spec_->gather_latency <= 1)
        return false;
    const Cycle now = engine_.now();
    for (const auto& [off, retire] : hazard_)
        if (off == dst_off && retire > now)
            return true;
    return false;
}

void
Pe::executeGather(std::uint32_t dst_off, std::uint32_t src_val,
                  std::uint32_t weight)
{
    const std::uint64_t old = bram_[dst_off];
    const std::uint64_t next = spec_->gather(src_val, old, weight);
    if (next != old || spec_->always_active)
        updated_ = true;
    bram_[dst_off] = next;
    ++stats_.edges_processed;
    if (spec_->gather_latency > 1) {
        // Record the hazard window; recycle expired slots.
        const Cycle retire = engine_.now() + spec_->gather_latency;
        for (auto& slot : hazard_) {
            if (slot.second <= engine_.now()) {
                slot = {dst_off, retire};
                return;
            }
        }
        hazard_.emplace_back(dst_off, retire);
    }
}

void
Pe::tickStream()
{
    // 1. Keep edge bursts in flight (tagged, may return out of order).
    while (edge_bursts_inflight_ < cfg_->max_edge_bursts &&
           !shards_.empty()) {
        ShardCursor& sc = shards_.front();
        const std::uint64_t bytes_left = 4 * sc.words_left;
        const std::uint64_t chunk = std::min(
            {static_cast<std::uint64_t>(cfg_->edge_burst_lines) *
                 kLineBytes,
             bytes_left, il_ - sc.addr % il_});
        if (!dma_.send(MemReq{sc.addr,
                              static_cast<std::uint32_t>(chunk),
                              dmaTag(DmaKind::Edge, edge_burst_seq_),
                              false}))
            break;
        edge_pending_.tryEmplace(
            edge_burst_seq_,
            EdgeSegment{sc.addr, static_cast<std::uint32_t>(chunk / 4),
                        0, sc.s});
        ++edge_burst_seq_;
        ++edge_bursts_inflight_;
        sc.addr += chunk;
        sc.words_left -= chunk / 4;
        if (sc.words_left == 0)
            shards_.pop_front();
    }

    // 2. Gather input: MOMS responses take priority over local edges.
    bool gather_used = false;
    if (!pending_resp_) {
        pending_resp_ = moms_->receive();
        if (pending_resp_)
            ++stats_.moms_resps;
    }
    if (pending_resp_) {
        std::uint32_t dst_off, weight;
        std::uint32_t id = 0;
        if (spec_->weighted) {
            id = static_cast<std::uint32_t>(pending_resp_->tag);
            dst_off = thread_state_[id].first;
            weight = thread_state_[id].second;
        } else {
            dst_off = static_cast<std::uint32_t>(pending_resp_->tag);
            weight = 0;
        }
        if (!rawHazard(dst_off)) {
            if (shadow_)
                shadow_->checkSourceRead(pending_resp_->addr);
            const std::uint32_t src_val =
                store_->read32(pending_resp_->addr);
            executeGather(dst_off, src_val, weight);
            if (spec_->weighted)
                free_ids_.push_back(id);
            --threads_outstanding_;
            pending_resp_.reset();
            gather_used = true;
        } else {
            ++stats_.raw_stalls;
        }
    }

    // 3. Decode and issue at most one edge.
    if (!decode_q_.empty()) {
        EdgeSegment& seg = decode_q_.front();
        bool have_edge = false;
        std::uint32_t dst_off = 0, src_off = 0, weight = 0, advance = 0;
        if (job_.packed) {
            // Packed half-word CSR: the cursor counts 16-bit
            // half-words. Padding and selector half-words are consumed
            // instantly (the hardware decodes a whole 512-bit line at
            // once); only source half-words take the one-edge-per-
            // cycle issue slot below.
            const std::uint32_t halves = 2 * seg.words;
            const auto half = [&](std::uint32_t h) {
                const std::uint32_t w =
                    store_->read32(seg.addr + 4ull * (h / 2));
                return static_cast<std::uint16_t>(h % 2 ? w >> 16
                                                        : w & 0xffffu);
            };
            while (seg.cursor < halves) {
                const std::uint16_t hw = half(seg.cursor);
                if (packedcsr::isPad(hw)) {
                    ++seg.cursor;
                } else if (packedcsr::isSelector(hw)) {
                    seg.open_dst = packedcsr::dstOff(hw);
                    seg.has_open_dst = true;
                    ++seg.cursor;
                } else {
                    break;
                }
            }
            if (seg.cursor >= halves) {
                decode_q_.pop_front();
            } else {
                if (!seg.has_open_dst)
                    panic("packed CSR line starts without a selector");
                dst_off = seg.open_dst;
                src_off = packedcsr::srcOff(half(seg.cursor));
                weight = spec_->weighted ? half(seg.cursor + 1) : 0;
                advance = spec_->weighted ? 2 : 1;
                have_edge = true;
            }
        } else {
            // Discard terminating/padding words instantly (the
            // hardware drops the remainder of the last 512-bit word).
            while (seg.cursor < seg.words &&
                   edgeword::isTerminating(
                       store_->read32(seg.addr + 4ull * seg.cursor)))
                ++seg.cursor;
            if (seg.cursor >= seg.words) {
                decode_q_.pop_front();
            } else {
                const std::uint32_t word =
                    store_->read32(seg.addr + 4ull * seg.cursor);
                dst_off = edgeword::dstOff(word);
                src_off = edgeword::srcOff(word);
                weight = spec_->weighted
                             ? store_->read32(seg.addr +
                                              4ull * (seg.cursor + 1))
                             : 0;
                advance = spec_->weighted ? 2 : 1;
                have_edge = true;
            }
        }
        if (have_edge) {
            const NodeId src =
                static_cast<NodeId>(seg.s) * cfg_->ns + src_off;

            const bool local =
                spec_->use_local_src && src >= job_.base &&
                src < job_.base + job_.count;
            if (local) {
                if (!gather_used && !rawHazard(dst_off)) {
                    executeGather(
                        dst_off,
                        static_cast<std::uint32_t>(
                            bram_[src - job_.base]),
                        weight);
                    ++stats_.local_src_reads;
                    seg.cursor += advance;
                }
            } else {
                const bool slot_free =
                    spec_->weighted
                        ? !free_ids_.empty()
                        : threads_outstanding_ < cfg_->max_threads;
                if (!slot_free) {
                    ++stats_.thread_stalls;
                } else if (!moms_->canSend()) {
                    ++stats_.moms_send_stalls;
                } else {
                    std::uint64_t tag;
                    if (spec_->weighted) {
                        const std::uint32_t id = free_ids_.back();
                        free_ids_.pop_back();
                        thread_state_[id] = {dst_off, weight};
                        tag = id;
                    } else {
                        tag = dst_off;  // Fig. 10b optimization
                    }
                    moms_->send(ReadReq{
                        job_.v_in_global + 4ull * src, tag, id_});
                    ++threads_outstanding_;
                    ++stats_.moms_reads;
                    seg.cursor += advance;
                }
            }
        }
    }

    // 4. Job's edge phase completes when nothing remains in flight.
    if (shards_.empty() && edge_pending_.empty() && decode_q_.empty() &&
        !pending_resp_ && threads_outstanding_ == 0) {
        wb_nodes_written_ = 0;
        wb_bytes_staged_ = 0;
        wb_writes_unacked_ = 0;
        phase_ = Phase::Writeback;
    }
}

void
Pe::tickWriteback()
{
    std::uint32_t budget = cfg_->nodes_per_cycle;
    while (budget > 0 && wb_nodes_written_ < job_.count) {
        if (wb_bytes_staged_ == 0)
            wb_burst_addr_ = job_.v_out_base + 4 * wb_nodes_written_;
        if (shadow_)
            shadow_->checkNodeWrite(job_.v_out_base +
                                    4 * wb_nodes_written_);
        // Functional write commits at issue; the burst models timing.
        store_->write32(job_.v_out_base + 4 * wb_nodes_written_,
                        spec_->apply(bram_[wb_nodes_written_]));
        ++wb_nodes_written_;
        wb_bytes_staged_ += 4;
        --budget;

        const Addr next = wb_burst_addr_ + wb_bytes_staged_;
        const bool boundary =
            next % il_ == 0 ||
            wb_bytes_staged_ >=
                static_cast<std::uint64_t>(cfg_->init_burst_lines) *
                    kLineBytes ||
            wb_nodes_written_ == job_.count;
        if (boundary) {
            if (!dma_.send(MemReq{
                    wb_burst_addr_,
                    static_cast<std::uint32_t>(wb_bytes_staged_),
                    dmaTag(DmaKind::Write, wb_seq_++), true})) {
                // Port full: roll the staging back and retry next cycle
                // (the functional writes are already committed, which
                // is fine — only timing is deferred).
                wb_nodes_written_ -= wb_bytes_staged_ / 4;
                wb_bytes_staged_ = 0;
                return;
            }
            ++wb_writes_unacked_;
            wb_bytes_staged_ = 0;
        }
    }

    if (wb_nodes_written_ == job_.count && wb_bytes_staged_ == 0 &&
        wb_writes_unacked_ == 0) {
        sched_->complete(job_.d, updated_);
        ++stats_.jobs;
        phase_ = Phase::Idle;
    }
}

void
Pe::registerTelemetry(Telemetry& tele)
{
    tele.addStall("pe", StallCause::RawHazard, &stats_.raw_stalls);
    tele.addStall("pe", StallCause::ThreadSlotsFull,
                  &stats_.thread_stalls);
    tele.addStall("pe",
                  cfg_->moms.topology == MomsConfig::Topology::Shared
                      ? StallCause::CrossingCredit
                      : StallCause::DownstreamBackpressure,
                  &stats_.moms_send_stalls);
    // idle_cycles/busy_cycles are reconstructed in bulk by catchUp(),
    // so their *totals* are engine-mode exact while individual window
    // deltas may shift by a wake gap (see docs/MODEL.md).
    tele.addStall("pe", StallCause::UpstreamEmpty, &stats_.idle_cycles);
    tele.addCounter("pe.edges", &stats_.edges_processed);
    tele.addCounter("pe.moms_reads", &stats_.moms_reads);
    tele.addCounter("pe.busy", &stats_.busy_cycles);
    tele.addLevel("pe.threads_outstanding", [this] {
        return static_cast<double>(threads_outstanding_);
    });
    decode_q_.attachProbe(
        tele.makeQueueProbe(name() + ".decode_q", 0), &engine_);
}

std::string
Pe::statusLine() const
{
    static const char* kPhaseNames[] = {"Idle", "FetchPtrs", "Init",
                                        "Stream", "Writeback"};
    std::string s = name();
    s += ": phase=";
    s += kPhaseNames[static_cast<int>(phase_)];
    if (phase_ == Phase::Idle)
        return s;
    s += " job.d=" + std::to_string(job_.d);
    s += " shards=" + std::to_string(shards_.size());
    s += " bursts_inflight=" + std::to_string(edge_bursts_inflight_);
    s += " decode_q=" + std::to_string(decode_q_.size());
    s += " threads_outstanding=" + std::to_string(threads_outstanding_);
    if (pending_resp_)
        s += " pending_resp(raw-parked)";
    if (phase_ == Phase::Writeback)
        s += " wb_written=" + std::to_string(wb_nodes_written_) + "/" +
             std::to_string(job_.count) +
             " unacked=" + std::to_string(wb_writes_unacked_);
    return s;
}

} // namespace gmoms
