/**
 * @file
 * Shadow functional memory: verifies the PE-visible memory traffic of a
 * run against golden data and the layout's section map.
 *
 * The simulator's data/timing split (timed pipelines move only
 * (addr, size, tag) tokens; all data lives in the BackingStore) means a
 * timing bug cannot corrupt data directly — but an *address* bug can
 * silently read the wrong section or scribble over the graph. The
 * shadow memory catches exactly that class:
 *
 *  - edge-burst payloads must match a snapshot of the edge section
 *    taken right after layout build (edges are immutable for the whole
 *    run, so any divergence is corruption);
 *  - source reads served by the MOMS must land inside the current V_in
 *    node array (live through swaps: bases are re-read per check);
 *  - PE writebacks must land inside the current V_out array.
 *
 * Only created when AccelConfig::checks asks for it; PEs hold a null
 * pointer otherwise (zero cost when off). All checks are reads — they
 * can never perturb simulation results.
 */

#ifndef GMOMS_CHECK_SHADOW_MEMORY_HH
#define GMOMS_CHECK_SHADOW_MEMORY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/types.hh"

namespace gmoms
{

class BackingStore;
class GraphLayout;

class ShadowMemory
{
  public:
    /** Snapshot the immutable edge section of @p store; call after
     *  GraphLayout::build(). @p num_nodes sizes the node arrays. */
    ShadowMemory(const BackingStore& store, const GraphLayout& layout,
                 NodeId num_nodes);

    /** An edge burst of @p bytes at @p addr arrived at a PE: the range
     *  must lie in the edge section and match the golden snapshot. */
    void checkEdgeSegment(Addr addr, std::uint64_t bytes) const;

    /** The MOMS answered a source read at @p addr: must lie in the
     *  current V_in array (bases re-read, so array swaps are honored). */
    void checkSourceRead(Addr addr) const;

    /** A PE writeback targets @p addr: must lie in the current V_out
     *  array. */
    void checkNodeWrite(Addr addr) const;

  private:
    [[noreturn]] void fail(const std::string& what, Addr addr) const;

    const BackingStore* store_;
    const GraphLayout* layout_;
    NodeId num_nodes_;
    Addr edge_base_ = 0;
    std::vector<std::uint8_t> edge_golden_;  //!< [edgeBase, ptrBase)
    mutable std::vector<std::uint8_t> scratch_;
};

} // namespace gmoms

#endif // GMOMS_CHECK_SHADOW_MEMORY_HH
