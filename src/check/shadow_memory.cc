#include "src/check/shadow_memory.hh"

#include <cstring>
#include <sstream>

#include "src/check/check_config.hh"
#include "src/graph/layout.hh"
#include "src/mem/backing_store.hh"

namespace gmoms
{

ShadowMemory::ShadowMemory(const BackingStore& store,
                           const GraphLayout& layout, NodeId num_nodes)
    : store_(&store), layout_(&layout), num_nodes_(num_nodes),
      edge_base_(layout.edgeBase())
{
    edge_golden_.resize(layout.edgeSectionBytes());
    store.readBytes(edge_base_, edge_golden_.data(), edge_golden_.size());
}

void
ShadowMemory::checkEdgeSegment(Addr addr, std::uint64_t bytes) const
{
    if (addr < edge_base_ || addr + bytes > edge_base_ + edge_golden_.size())
        fail("edge burst outside the edge section [" +
                 std::to_string(edge_base_) + ", " +
                 std::to_string(edge_base_ + edge_golden_.size()) + ")",
             addr);
    // Edges are immutable after layout build: a payload mismatch means a
    // timed pipeline delivered the wrong line or something scribbled on
    // the store underneath it.
    scratch_.resize(bytes);
    store_->readBytes(addr, scratch_.data(), bytes);
    if (std::memcmp(edge_golden_.data() + (addr - edge_base_),
                    scratch_.data(), bytes) != 0)
        fail("edge burst payload diverged from the golden edge-section "
             "snapshot (graph data corrupted during the run)",
             addr);
}

void
ShadowMemory::checkSourceRead(Addr addr) const
{
    // Bases are re-read on every check: swapInOut() flips V_in/V_out
    // between iterations and a stale bound would flag legal reads.
    const Addr base = layout_->vInBase();
    const Addr end = base + 4ull * num_nodes_;
    if (addr < base || addr + 4 > end || (addr & 3) != 0)
        fail("MOMS source read outside the current V_in array [" +
                 std::to_string(base) + ", " + std::to_string(end) + ")",
             addr);
}

void
ShadowMemory::checkNodeWrite(Addr addr) const
{
    const GraphLayout& l = *layout_;
    const Addr base = l.synchronous() ? l.vOutBase() : l.vInBase();
    const Addr end = base + 4ull * num_nodes_;
    if (addr < base || addr + 4 > end || (addr & 3) != 0)
        fail("PE writeback outside the current result array [" +
                 std::to_string(base) + ", " + std::to_string(end) + ")",
             addr);
}

void
ShadowMemory::fail(const std::string& what, Addr addr) const
{
    std::ostringstream dump;
    dump << "shadow memory violation at address 0x" << std::hex << addr
         << std::dec << "\n"
         << "  section map: V_in base " << layout_->vInBase();
    if (layout_->synchronous())
        dump << ", V_out base " << layout_->vOutBase();
    if (layout_->hasConst())
        dump << ", V_const base " << layout_->vConstBase();
    dump << ", edges [" << layout_->edgeBase() << ", " << layout_->ptrBase()
         << "), ptrs from " << layout_->ptrBase() << "\n"
         << "  nodes: " << num_nodes_;
    throw CheckError("shadow memory: " + what, dump.str());
}

} // namespace gmoms
