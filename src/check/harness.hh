/**
 * @file
 * CheckHarness: quiescence watchdog + conservation checkers of the
 * hardening layer (ISSUE 4 tentpole).
 *
 * The harness is an engine Component with the same scheduling contract
 * as the telemetry sampler (PR 3): nextActivity() is pinned to
 * checkpoint boundaries and tick() no-ops when woken early, so the
 * idle-aware and full-tick engines observe it at identical cycles and
 * simulation results stay bit-exact with checks on or off. It only
 * *reads* the wired components.
 *
 * Three failure surfaces:
 *  - watchdog: if the progress signature (edges gathered, responses
 *    delivered, lines fetched, DRAM traffic, jobs handed out) does not
 *    move across one whole watchdog_interval while the accelerator is
 *    not drained, the run is wedged — abort with a diagnostic dump
 *    instead of burning the rest of the cycle budget;
 *  - budget: the accelerator calls failBudget() when runUntil() returns
 *    with work outstanding, turning the old one-line fatal into a full
 *    dump;
 *  - drain: verifyDrained() after the end-of-run drain checks the
 *    conservation invariants (MSHR allocate/free balance, subentry
 *    leaks, request/response token balance across the crossbars and
 *    die-crossing queues) that must hold in a truly drained system.
 *
 * Only constructed when AccelConfig::checks.enabled; otherwise no
 * object exists and nothing is ever polled (zero-cost-when-off, see
 * docs/MODEL.md "Invariants & watchdog").
 */

#ifndef GMOMS_CHECK_HARNESS_HH
#define GMOMS_CHECK_HARNESS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/check/check_config.hh"
#include "src/sim/engine.hh"

namespace gmoms
{

class AccelConfig;
class MemorySystem;
class MomsSystem;
class Pe;
class Scheduler;
class Telemetry;

class CheckHarness : public Component
{
  public:
    /**
     * Read-only views of the system under check. Every pointer may be
     * null: absent parts simply contribute nothing to the progress
     * signature, conservation math or dump (the standalone watchdog
     * tests wire only an engine).
     */
    struct Wiring
    {
        const MomsSystem* moms = nullptr;
        const MemorySystem* mem = nullptr;
        const Scheduler* sched = nullptr;
        const std::vector<std::unique_ptr<Pe>>* pes = nullptr;
        /** Non-const: a mid-run dump finalizes it for attribution. */
        Telemetry* telemetry = nullptr;
    };

    /** Registers itself with @p engine. */
    CheckHarness(Engine& engine, const CheckConfig& cfg, Wiring wiring);
    ~CheckHarness() override;

    // -- engine integration (telemetry-sampler contract) ----------------
    void tick() override;
    Cycle nextActivity() const override { return next_check_; }

    /**
     * Conservation audit after the end-of-run drain. Throws CheckError
     * when the system still holds work (undrained) or any drained-state
     * invariant is violated (leaked MSHR/subentry, lost token, stuck
     * credit).
     */
    void verifyDrained() const;

    /** The cycle budget ran out with work outstanding: dump + throw. */
    [[noreturn]] void failBudget(std::uint64_t max_cycles) const;

    /** Full diagnostic dump (header, progress signature, conservation
     *  balance, per-component queue depths and status, stall
     *  attribution when telemetry is wired). */
    std::string diagnosticDump(const std::string& reason) const;

  private:
    /** Monotone counter over every progress event in the system; a
     *  wedged simulation is exactly one where this stops moving.
     *  Deliberately excludes stall/idle counters (they advance every
     *  cycle *of* a wedge) and engine tick counts (full tick always
     *  advances them). */
    std::uint64_t progressSignature() const;

    /** Human-readable conservation balance; appends one line per
     *  violated invariant to @p violations ("at_drain" enables the
     *  must-be-empty occupancy checks). */
    std::string conservationReport(
        std::vector<std::string>* violations, bool at_drain) const;

    [[noreturn]] void fail(const std::string& reason) const;

    Engine& engine_;
    CheckConfig cfg_;
    Wiring w_;
    Cycle next_check_ = 0;
    std::uint64_t last_signature_ = 0;
    bool have_signature_ = false;
};

} // namespace gmoms

#endif // GMOMS_CHECK_HARNESS_HH
