#include "src/check/harness.hh"

#include <fstream>
#include <sstream>

#include "src/accel/pe.hh"
#include "src/accel/scheduler.hh"
#include "src/cache/moms_system.hh"
#include "src/mem/memory_system.hh"
#include "src/obs/telemetry.hh"
#include "src/sim/log.hh"

namespace gmoms
{

namespace
{

/** Level-1 banks: what PEs talk to directly. */
const std::vector<std::unique_ptr<MomsBank>>&
level1(const MomsSystem& moms)
{
    return moms.privateBanks().empty() ? moms.sharedBanks()
                                       : moms.privateBanks();
}

std::uint64_t
sumQueued(const std::vector<std::unique_ptr<MomsBank>>& banks,
          bool responses)
{
    std::uint64_t total = 0;
    for (const auto& b : banks)
        total += responses ? b->cpuRespOut().size() : b->cpuReqIn().size();
    return total;
}

} // namespace

CheckHarness::CheckHarness(Engine& engine, const CheckConfig& cfg,
                           Wiring wiring)
    : Component("check"), engine_(engine), cfg_(cfg), w_(wiring),
      next_check_(engine.now() + cfg.watchdog_interval)
{
    if (cfg_.watchdog_interval == 0)
        fatal("CheckConfig::watchdog_interval must be nonzero");
    engine_.add(this);
}

CheckHarness::~CheckHarness() = default;

void
CheckHarness::tick()
{
    // Same contract as the telemetry sampler: wakeAll()/full-tick may
    // tick us on any cycle; checkpoints happen only at the pinned
    // boundary so both engine modes observe identical behavior.
    if (engine_.now() < next_check_)
        return;

    const std::uint64_t sig = progressSignature();
    bool drained = w_.moms || w_.mem || w_.sched || w_.pes;
    if (w_.moms && !w_.moms->idle())
        drained = false;
    if (w_.mem && !w_.mem->idle())
        drained = false;
    if (w_.sched && w_.sched->hasJobs())
        drained = false;
    if (w_.pes)
        for (const auto& pe : *w_.pes)
            if (!pe->idle())
                drained = false;

    if (have_signature_ && sig == last_signature_ && !drained)
        fail("quiescence watchdog: no forward progress over " +
             std::to_string(cfg_.watchdog_interval) +
             " cycles with work outstanding (wedged simulation)");

    last_signature_ = sig;
    have_signature_ = true;
    next_check_ = engine_.now() + cfg_.watchdog_interval;
}

std::uint64_t
CheckHarness::progressSignature() const
{
    // Only *progress* events: stall/idle counters advance during a
    // wedge and engine tick counts always advance under full tick, so
    // neither may contribute.
    std::uint64_t sig = 0;
    if (w_.sched)
        sig += w_.sched->jobsPulled();
    if (w_.pes) {
        for (const auto& pe : *w_.pes) {
            const Pe::Stats& s = pe->stats();
            sig += s.jobs + s.edges_processed + s.local_src_reads +
                   s.moms_reads + s.moms_resps;
        }
    }
    if (w_.moms) {
        sig += w_.moms->totalRequests() + w_.moms->totalHits() +
               w_.moms->totalLinesFromMem();
        for (const auto& b : w_.moms->sharedBanks())
            sig += b->stats().responses + b->stats().requests;
        for (const auto& b : w_.moms->privateBanks())
            sig += b->stats().responses;
    }
    if (w_.mem)
        sig += w_.mem->totalBytesRead() + w_.mem->totalBytesWritten();
    return sig;
}

std::string
CheckHarness::conservationReport(std::vector<std::string>* violations,
                                 bool at_drain) const
{
    std::ostringstream out;
    if (!w_.moms)
        return "";
    const MomsSystem& moms = *w_.moms;
    const auto& l1 = level1(moms);
    const bool two_level = !moms.privateBanks().empty() &&
                           !moms.sharedBanks().empty();

    auto violate = [&](const std::string& v) {
        if (violations)
            violations->push_back(v);
        out << "  VIOLATION: " << v << "\n";
    };

    // --- request tokens: PE sends vs level-1 bank receipts -------------
    std::uint64_t pe_sends = 0, pe_recvs = 0;
    if (w_.pes) {
        for (const auto& pe : *w_.pes) {
            pe_sends += pe->stats().moms_reads;
            pe_recvs += pe->stats().moms_resps;
        }
        // PE->L1 in flight: the crossbar queues (Shared topology: the
        // crossbar sits between PEs and the shared banks) plus the
        // banks' input queues.
        std::uint64_t req_inflight = sumQueued(l1, false);
        if (!two_level)
            req_inflight += moms.xbarReqDepth();
        std::uint64_t l1_reqs = 0, l1_resps = 0;
        for (const auto& b : l1) {
            l1_reqs += b->stats().requests;
            l1_resps += b->stats().responses;
        }
        out << "  request tokens: PE sends " << pe_sends
            << " = bank receipts " << l1_reqs << " + in-flight "
            << req_inflight << "\n";
        if (pe_sends > l1_reqs + req_inflight)
            violate(std::to_string(pe_sends - l1_reqs - req_inflight) +
                    " request token(s) lost between the PEs and the "
                    "level-1 banks (crossbar dropped a request?)");
        else if (pe_sends < l1_reqs + req_inflight)
            violate("level-1 banks saw more request tokens than the "
                    "PEs sent (duplicated token?)");

        // --- response tokens: level-1 emissions vs PE receipts ---------
        std::uint64_t resp_inflight = sumQueued(l1, true);
        if (!two_level)
            resp_inflight += moms.xbarRespDepth();
        out << "  response tokens: bank responses " << l1_resps
            << " = PE receipts " << pe_recvs << " + in-flight "
            << resp_inflight << "\n";
        if (l1_resps > pe_recvs + resp_inflight)
            violate(std::to_string(l1_resps - pe_recvs - resp_inflight) +
                    " response token(s) lost between the level-1 banks "
                    "and the PEs");
        if (!at_drain && resp_inflight > 0)
            violate(std::to_string(resp_inflight) +
                    " undelivered response(s) wedged in flight (stuck "
                    "credit or wedged consumer)");
        if (at_drain && resp_inflight > 0)
            violate(std::to_string(resp_inflight) +
                    " response(s) still queued after drain (stuck "
                    "credit)");
        if (at_drain && pe_sends != pe_recvs)
            violate("PE request/response imbalance at drain: sent " +
                    std::to_string(pe_sends) + ", received " +
                    std::to_string(pe_recvs));
    }

    // --- die-crossing / L1->L2 token balance (TwoLevel only) ------------
    if (two_level) {
        std::uint64_t l1_primary = 0, l1_lines = 0;
        for (const auto& b : moms.privateBanks()) {
            l1_primary += b->stats().primary_misses;
            l1_lines += b->stats().lines_from_mem;
        }
        std::uint64_t l2_reqs = 0, l2_resps = 0;
        for (const auto& b : moms.sharedBanks()) {
            l2_reqs += b->stats().requests;
            l2_resps += b->stats().responses;
        }
        const std::uint64_t down_inflight =
            moms.xbarReqDepth() + sumQueued(moms.sharedBanks(), false);
        const std::uint64_t up_inflight =
            moms.xbarRespDepth() + sumQueued(moms.sharedBanks(), true);
        out << "  crossing down: L1 misses " << l1_primary
            << " = L2 receipts " << l2_reqs << " + in-flight "
            << down_inflight << "\n";
        out << "  crossing up: L2 responses " << l2_resps
            << " = L1 lines " << l1_lines << " + in-flight "
            << up_inflight << "\n";
        if (l1_primary > l2_reqs + down_inflight)
            violate("die-crossing request token(s) lost between L1 and "
                    "L2 banks");
        if (l2_resps > l1_lines + up_inflight)
            violate("die-crossing response token(s) lost between L2 and "
                    "L1 banks");
    }

    // --- per-bank occupancy: must be empty in a drained system ----------
    auto audit = [&](const std::vector<std::unique_ptr<MomsBank>>& banks) {
        for (const auto& b : banks) {
            const std::uint64_t mshr_occ = b->mshrs().occupancy();
            const std::uint64_t sub_occ = b->subentries().occupancy();
            if (at_drain && mshr_occ > 0)
                violate("MSHR leak: bank " + b->name() + " holds " +
                        std::to_string(mshr_occ) +
                        " allocated MSHR(s) after drain (allocate/free "
                        "imbalance)");
            if (at_drain && sub_occ > 0)
                violate("subentry leak: bank " + b->name() + " holds " +
                        std::to_string(sub_occ) +
                        " subentries after drain");
            if (at_drain && b->stats().lines_from_mem !=
                                b->stats().primary_misses)
                violate("bank " + b->name() + ": " +
                        std::to_string(b->stats().primary_misses) +
                        " primary misses but " +
                        std::to_string(b->stats().lines_from_mem) +
                        " lines delivered from downstream");
        }
    };
    audit(moms.privateBanks());
    audit(moms.sharedBanks());

    return out.str();
}

std::string
CheckHarness::diagnosticDump(const std::string& reason) const
{
    std::ostringstream out;
    out << "=== hardening-layer diagnostic dump ===\n"
        << "reason: " << reason << "\n"
        << "cycle: " << engine_.now() << "\n";
    if (!cfg_.replay_context.empty())
        out << "replay: " << cfg_.replay_context << " fail_cycle="
            << engine_.now() << "\n";

    if (w_.sched)
        out << "scheduler: jobs pulled " << w_.sched->jobsPulled()
            << ", has jobs: " << (w_.sched->hasJobs() ? "yes" : "no")
            << ", iteration done: "
            << (w_.sched->iterationDone() ? "yes" : "no") << "\n";
    if (w_.mem)
        out << "memory: idle " << (w_.mem->idle() ? "yes" : "no")
            << ", bytes read " << w_.mem->totalBytesRead()
            << ", bytes written " << w_.mem->totalBytesWritten() << "\n";

    if (w_.pes) {
        out << "processing elements:\n";
        for (const auto& pe : *w_.pes)
            out << "  " << pe->statusLine() << "\n";
    }

    if (w_.moms) {
        out << "MOMS (" << (w_.moms->idle() ? "idle" : "busy")
            << "), non-empty queues and occupied structures:\n";
        const std::string queues = w_.moms->queueReport();
        out << (queues.empty() ? std::string("  (all drained)\n")
                               : queues);
        out << "conservation balance:\n"
            << conservationReport(nullptr, false);
    }

    if (w_.telemetry) {
        // Mid-run finalize is safe here: every dump precedes a throw,
        // so no further windows would ever have been sampled.
        out << "stall attribution (telemetry):\n"
            << bottleneckReport(*w_.telemetry->finalize());
    }
    out << "=== end of dump ===\n";
    return out.str();
}

void
CheckHarness::fail(const std::string& reason) const
{
    const std::string dump = diagnosticDump(reason);
    if (!cfg_.dump_path.empty()) {
        std::ofstream f(cfg_.dump_path);
        f << dump;
    }
    throw CheckError(reason, dump);
}

void
CheckHarness::failBudget(std::uint64_t max_cycles) const
{
    fail("cycle budget exceeded: no completion after " +
         std::to_string(max_cycles) +
         " cycles (deadlock or undersized AccelConfig::max_cycles)");
}

void
CheckHarness::verifyDrained() const
{
    std::vector<std::string> violations;
    if (w_.moms && !w_.moms->idle())
        violations.push_back("MOMS not drained after the final drain "
                             "window");
    if (w_.mem && !w_.mem->idle())
        violations.push_back("memory system not drained after the final "
                             "drain window");
    conservationReport(&violations, true);
    if (violations.empty())
        return;
    std::string reason = "post-drain conservation audit failed:";
    for (const std::string& v : violations)
        reason += "\n  - " + v;
    fail(reason);
}

} // namespace gmoms
