/**
 * @file
 * Configuration and error type of the opt-in hardening layer
 * (src/check/): invariant checkers, the quiescence watchdog and the
 * shadow functional memory.
 *
 * This header is deliberately free-standing (no simulator includes) so
 * AccelConfig can embed a CheckConfig without include cycles, and so
 * callers can catch CheckError without pulling in the whole harness.
 */

#ifndef GMOMS_CHECK_CHECK_CONFIG_HH
#define GMOMS_CHECK_CHECK_CONFIG_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace gmoms
{

/**
 * Knobs of the hardening layer, embedded as AccelConfig::checks.
 *
 * Cost contract (mirrors telemetry, docs/MODEL.md "Invariants &
 * watchdog"): with enabled == false no harness component and no shadow
 * memory are created and every hook pointer stays null — zero per-cycle
 * cost and bit-identical results. With enabled == true the checkers
 * only *read* simulation state, so results are still bit-identical in
 * both engine modes; the run merely gains the right to abort with a
 * CheckError instead of hanging or finishing silently wrong.
 */
struct CheckConfig
{
    bool enabled = false;

    /**
     * Cycles between quiescence-watchdog checkpoints. At every
     * checkpoint the watchdog compares a progress signature (edges
     * gathered, responses delivered, lines fetched, DRAM traffic, jobs
     * scheduled); if nothing moved over a whole interval while the
     * accelerator is not drained, the run is wedged — the watchdog
     * aborts with a diagnostic dump instead of burning the remaining
     * cycle budget.
     */
    std::uint64_t watchdog_interval = 100'000;

    /**
     * Verify PE memory traffic against a shadow functional memory:
     * edge-burst payloads must match a snapshot taken at layout build
     * (the edge section is immutable), source reads must land inside
     * the current V_in array and writebacks inside the current V_out
     * interval section.
     */
    bool shadow_memory = true;

    /** When non-empty, every diagnostic dump is also written to this
     *  file (CI uploads it as an artifact on failure). */
    std::string dump_path;

    /** When non-empty, prepended to every diagnostic dump: a replay
     *  recipe for the failing run (see ReplayDescriptor in
     *  src/accel/checkpoint.hh) so a watchdog dump is *restorable* —
     *  deterministic re-execution reaches the same cycle with the same
     *  state. GraphService fills this per job. */
    std::string replay_context;
};

/**
 * Thrown by the hardening layer on any detected invariant violation,
 * wedge or budget overrun. what() carries the headline and the full
 * diagnostic dump; reason()/dump() give the two parts separately.
 */
class CheckError : public std::runtime_error
{
  public:
    CheckError(std::string reason, std::string dump)
        : std::runtime_error(reason + "\n" + dump),
          reason_(std::move(reason)), dump_(std::move(dump))
    {
    }

    const std::string& reason() const { return reason_; }
    const std::string& dump() const { return dump_; }

  private:
    std::string reason_;
    std::string dump_;
};

} // namespace gmoms

#endif // GMOMS_CHECK_CHECK_CONFIG_HH
