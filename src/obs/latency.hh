/**
 * @file
 * Service-level latency accounting for the serving layer (src/serve/).
 *
 * The PR-3 telemetry stack measures *inside* one simulation in cycle
 * space; a serving layer additionally needs wall-clock distributions
 * *across* jobs (queue wait, preprocessing, simulation, end-to-end) and
 * a throughput figure. LatencyStats is the smallest thing that covers
 * that: an exact sample store with nearest-rank percentiles — sample
 * counts at serving scale (thousands of jobs) are far below the point
 * where sketches would pay for their approximation error.
 *
 * Thread-compat, not thread-safe: the service updates its instances
 * under its own mutex and hands copies out of stats().
 */

#ifndef GMOMS_OBS_LATENCY_HH
#define GMOMS_OBS_LATENCY_HH

#include <cstddef>
#include <string>
#include <vector>

#include "src/sim/report.hh"

namespace gmoms
{

class LatencyStats
{
  public:
    void add(double seconds);
    void merge(const LatencyStats& other);

    std::size_t count() const { return samples_.size(); }
    double mean() const;
    double max() const;

    /**
     * Nearest-rank percentile, @p p in [0, 100]: the smallest sample
     * such that at least p% of samples are <= it (p50/p95/p99 of the
     * serving SLO report). 0 when no samples were recorded.
     */
    double percentile(double p) const;

  private:
    std::vector<double> samples_;
};

/** Append @p stats under @p prefix as prefix_{count,mean,max,p50,p95,
 *  p99} — the SLO block every serving report shares. */
void appendLatency(JsonReport& report, const std::string& prefix,
                   const LatencyStats& stats);

} // namespace gmoms

#endif // GMOMS_OBS_LATENCY_HH
