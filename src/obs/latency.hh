/**
 * @file
 * Service-level latency accounting for the serving layer (src/serve/).
 *
 * The PR-3 telemetry stack measures *inside* one simulation in cycle
 * space; a serving layer additionally needs wall-clock distributions
 * *across* jobs (queue wait, preprocessing, simulation, end-to-end) and
 * a throughput figure. LatencyStats is the smallest thing that covers
 * that: an exact sample store with nearest-rank percentiles — sample
 * counts at serving scale (thousands of jobs) are far below the point
 * where sketches would pay for their approximation error.
 *
 * Thread-compat, not thread-safe: the service updates its instances
 * under its own mutex and hands copies out of stats().
 */

#ifndef GMOMS_OBS_LATENCY_HH
#define GMOMS_OBS_LATENCY_HH

#include <cstddef>
#include <string>
#include <vector>

#include "src/sim/report.hh"

namespace gmoms
{

class LatencyStats
{
  public:
    void add(double seconds);
    void merge(const LatencyStats& other);

    std::size_t count() const { return samples_.size(); }
    double mean() const;
    double max() const;

    /**
     * Nearest-rank percentile, @p p in [0, 100]: the smallest sample
     * such that at least p% of samples are <= it (p50/p95/p99 of the
     * serving SLO report). 0 when no samples were recorded.
     */
    double percentile(double p) const;

  private:
    std::vector<double> samples_;
};

/** Append @p stats under @p prefix as prefix_{count,mean,max,p50,p95,
 *  p99} — the SLO block every serving report shares. */
void appendLatency(JsonReport& report, const std::string& prefix,
                   const LatencyStats& stats);

/**
 * Named per-layer latency distributions, in first-use order: the
 * networked front end (ISSUE 9) spans more layers than one simulation
 * — epoll read -> protocol handling -> admission queue -> simulation ->
 * write flush — and the SLO question is always "which layer ate the
 * budget". A LatencyBreakdown holds one LatencyStats per named layer so
 * the TCP server (net_handle/net_flush), the service (queue/prep/sim)
 * and the bench client (rpc) all report through the same shape.
 *
 * Thread-compat like LatencyStats: callers synchronize externally.
 */
class LatencyBreakdown
{
  public:
    /** Record one sample for @p layer (created on first use). */
    void add(const std::string& layer, double seconds);

    void merge(const LatencyBreakdown& other);

    /** Layer stats, or null when the layer never recorded a sample. */
    const LatencyStats* find(const std::string& layer) const;

    const std::vector<std::pair<std::string, LatencyStats>>&
    layers() const
    {
        return layers_;
    }

    /** appendLatency() for every layer as prefix_layer_{...}. */
    void appendTo(JsonReport& report, const std::string& prefix) const;

  private:
    std::vector<std::pair<std::string, LatencyStats>> layers_;
};

} // namespace gmoms

#endif // GMOMS_OBS_LATENCY_HH
