/**
 * @file
 * Chrome trace-event (Perfetto-loadable) export of telemetry summaries.
 *
 * One JSON object with a "traceEvents" array, per the Trace Event
 * Format. Mapping: 1 simulated cycle = 1 trace microsecond; each run
 * (TelemetrySummary) becomes one process (pid = run index + 1) named by
 * its label via a metadata event; simulation phases become duration
 * ("X") events; every windowed series becomes a counter ("C") track
 * whose value is the per-window delta (a rate) for counter series and
 * the end-of-window sample for level series. All-zero series are
 * elided to keep multi-run sweep traces loadable.
 *
 * Open the produced file at https://ui.perfetto.dev (or
 * chrome://tracing); see EXPERIMENTS.md for a walkthrough.
 */

#ifndef GMOMS_OBS_TRACE_EXPORT_HH
#define GMOMS_OBS_TRACE_EXPORT_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/telemetry.hh"

namespace gmoms
{

using TelemetrySummaryPtr = std::shared_ptr<const TelemetrySummary>;

/** Write all @p runs as one Chrome trace-event JSON document. */
void writeChromeTrace(std::ostream& os,
                      const std::vector<TelemetrySummaryPtr>& runs);

/** writeChromeTrace into a string (tests, small traces). */
std::string chromeTraceString(
    const std::vector<TelemetrySummaryPtr>& runs);

/** Write the trace to @p path; returns false when the file cannot be
 *  opened (the caller reports the path). */
bool writeChromeTraceFile(const std::string& path,
                          const std::vector<TelemetrySummaryPtr>& runs);

} // namespace gmoms

#endif // GMOMS_OBS_TRACE_EXPORT_HH
