#include "src/obs/latency.hh"

#include <algorithm>
#include <cmath>

namespace gmoms
{

void
LatencyStats::add(double seconds)
{
    samples_.push_back(seconds);
}

void
LatencyStats::merge(const LatencyStats& other)
{
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
}

double
LatencyStats::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

double
LatencyStats::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

double
LatencyStats::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    std::vector<double> sorted = samples_;
    const double clamped = std::min(std::max(p, 0.0), 100.0);
    // Nearest-rank: ceil(p/100 * N), 1-based; rank 1 at p == 0.
    const std::size_t n = sorted.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(rank - 1),
                     sorted.end());
    return sorted[rank - 1];
}

void
LatencyBreakdown::add(const std::string& layer, double seconds)
{
    for (auto& [name, stats] : layers_)
        if (name == layer) {
            stats.add(seconds);
            return;
        }
    layers_.emplace_back(layer, LatencyStats{});
    layers_.back().second.add(seconds);
}

void
LatencyBreakdown::merge(const LatencyBreakdown& other)
{
    for (const auto& [name, stats] : other.layers_) {
        bool merged = false;
        for (auto& [mine, own] : layers_)
            if (mine == name) {
                own.merge(stats);
                merged = true;
                break;
            }
        if (!merged)
            layers_.emplace_back(name, stats);
    }
}

const LatencyStats*
LatencyBreakdown::find(const std::string& layer) const
{
    for (const auto& [name, stats] : layers_)
        if (name == layer)
            return &stats;
    return nullptr;
}

void
LatencyBreakdown::appendTo(JsonReport& report,
                           const std::string& prefix) const
{
    for (const auto& [name, stats] : layers_)
        appendLatency(report, prefix + "_" + name, stats);
}

void
appendLatency(JsonReport& report, const std::string& prefix,
              const LatencyStats& stats)
{
    report.set(prefix + "_count",
               static_cast<std::uint64_t>(stats.count()))
        .set(prefix + "_mean_s", stats.mean())
        .set(prefix + "_max_s", stats.max())
        .set(prefix + "_p50_s", stats.percentile(50))
        .set(prefix + "_p95_s", stats.percentile(95))
        .set(prefix + "_p99_s", stats.percentile(99));
}

} // namespace gmoms
