#include "src/obs/json_check.hh"

#include <cctype>
#include <cstdlib>

namespace gmoms
{

std::uint64_t
JsonValue::asUint64(std::uint64_t fallback) const
{
    if (kind != Kind::Number || raw.empty() || raw[0] == '-' ||
        raw.find_first_of(".eE") != std::string::npos)
        return fallback;
    return std::strtoull(raw.c_str(), nullptr, 10);
}

const JsonValue*
JsonValue::find(const std::string& key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto& [k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

namespace
{

class Parser
{
  public:
    Parser(std::string_view text, std::string* error)
        : text_(text), error_(error)
    {
    }

    std::optional<JsonValue>
    run()
    {
        JsonValue v;
        if (!parseValue(v))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after value");
            return std::nullopt;
        }
        return v;
    }

  private:
    void
    fail(const std::string& what)
    {
        if (error_ != nullptr && error_->empty())
            *error_ = what + " at offset " + std::to_string(pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    expect(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        fail(std::string("expected '") + c + "'");
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word) {
            fail("bad literal");
            return false;
        }
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(JsonValue& out)
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        switch (text_[pos_]) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default: return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue& out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_;  // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                return false;
            }
            if (!parseString(key))
                return false;
            skipWs();
            if (!expect(':'))
                return false;
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.object.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return expect('}');
        }
    }

    bool
    parseArray(JsonValue& out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_;  // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.array.push_back(std::move(v));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return expect(']');
        }
    }

    bool
    hexDigit(char c, unsigned& out) const
    {
        if (c >= '0' && c <= '9') {
            out = static_cast<unsigned>(c - '0');
            return true;
        }
        if (c >= 'a' && c <= 'f') {
            out = static_cast<unsigned>(c - 'a' + 10);
            return true;
        }
        if (c >= 'A' && c <= 'F') {
            out = static_cast<unsigned>(c - 'A' + 10);
            return true;
        }
        return false;
    }

    void
    appendUtf8(std::string& s, unsigned cp) const
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    parseString(std::string& out)
    {
        ++pos_;  // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
                return false;
            }
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (pos_ + 1 >= text_.size()) {
                fail("dangling escape");
                return false;
            }
            const char esc = text_[pos_ + 1];
            pos_ += 2;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return false;
                }
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    unsigned d = 0;
                    if (!hexDigit(text_[pos_ + i], d)) {
                        fail("bad \\u escape");
                        return false;
                    }
                    cp = cp * 16 + d;
                }
                pos_ += 4;
                appendUtf8(out, cp);
                break;
              }
              default: fail("unknown escape"); return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool
    parseNumber(JsonValue& out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        auto digits = [&] {
            const std::size_t d = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
            return pos_ > d;
        };
        if (!digits()) {
            fail("bad number");
            return false;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (!digits()) {
                fail("bad fraction");
                return false;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (!digits()) {
                fail("bad exponent");
                return false;
            }
        }
        out.kind = JsonValue::Kind::Number;
        out.raw = std::string(text_.substr(start, pos_ - start));
        out.number = std::strtod(out.raw.c_str(), nullptr);
        return true;
    }

    std::string_view text_;
    std::string* error_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(std::string_view text, std::string* error)
{
    if (error != nullptr)
        error->clear();
    return Parser(text, error).run();
}

} // namespace gmoms
