/**
 * @file
 * Telemetry subsystem: cycle-windowed time series, stall attribution
 * and queue-occupancy collection for one simulation.
 *
 * A Telemetry instance is owned by the Accelerator of a single run (the
 * parallel sweep runner stays re-entrant: no globals, no sharing) and
 * is only constructed when AccelConfig::telemetry.enabled is set — with
 * telemetry off the simulator carries no sampler component and the only
 * residual cost is a null-pointer test on queue push/pop (verified by
 * bench_engine).
 *
 * Three collection mechanisms, all exact under the idle-aware engine:
 *
 *  - The *sampler* is a Component whose nextActivity() is the next
 *    window boundary, so the wake calendar never fast-forwards past a
 *    sample point; its tick() guard (`now < next boundary` => no-op)
 *    makes full-tick and idle-aware runs sample at identical cycles.
 *    Sampling only reads counters — it can never perturb results.
 *
 *  - *Stall channels* reuse counters that components already increment
 *    on ticks that occur in both engine modes (the quiescence contract
 *    guarantees skipped ticks change no statistics), tagged with a
 *    StallCause for attribution.
 *
 *  - *Queue probes* (src/sim/queue_probe.hh) are event-driven depth
 *    histograms fed from TimedQueue/RingDeque push/pop.
 *
 * The windowed series live in a bounded buffer with *decimation*: when
 * the buffer fills, adjacent windows merge and the window width doubles
 * — full-run coverage at bounded memory, and deterministic in cycle
 * space (independent of engine mode).
 */

#ifndef GMOMS_OBS_TELEMETRY_HH
#define GMOMS_OBS_TELEMETRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/engine.hh"
#include "src/sim/queue_probe.hh"
#include "src/sim/types.hh"

namespace gmoms
{

/**
 * Why a component wasted a cycle (or a slot of one). The first seven
 * are the taxonomy of the paper's contention points; the last two cover
 * the PE gather pipeline's own hazards.
 */
enum class StallCause : std::uint8_t
{
    UpstreamEmpty = 0,       //!< nothing to do: starved by the producer
    DownstreamBackpressure,  //!< output queue/port full
    BankConflict,            //!< crossbar: bank already claimed this cycle
    MshrFull,                //!< MSHR insert failed (capacity/cuckoo)
    SubentryFull,            //!< subentry pool or per-miss cap exhausted
    RowMiss,                 //!< DRAM row-buffer miss penalty cycles
    CrossingCredit,          //!< die-crossing queue out of credits
    RawHazard,               //!< gather pipeline read-after-write stall
    ThreadSlotsFull,         //!< PE out of thread (miss-tag) slots
    BoardLink,               //!< inter-board link: credits or barrier
};

inline constexpr std::size_t kNumStallCauses = 10;

/** Stable kebab-case name, e.g. "bank-conflict". */
const char* stallCauseName(StallCause cause);

/** Sampling configuration carried inside AccelConfig. */
struct TelemetryConfig
{
    bool enabled = false;
    /** Initial sampling window width; doubles whenever the window
     *  buffer fills (decimation), so long runs stay bounded. */
    Cycle window_cycles = 4096;
    /** Window-buffer capacity (rounded down to even, min 2). */
    std::size_t max_windows = 256;
    /** Run label used for trace process naming and reports. */
    std::string label;
};

/**
 * Immutable result of one instrumented run, materialized by
 * Telemetry::finalize() while all components are still alive — safe to
 * keep, print and export long after the Accelerator is gone.
 */
struct TelemetrySummary
{
    struct Window
    {
        Cycle begin = 0;
        Cycle end = 0;
        /** Per-series value: window delta for counter series (a rate),
         *  instantaneous end-of-window sample for level series. */
        std::vector<double> values;
    };

    struct StallTotal
    {
        std::string group;  //!< e.g. "pe", "moms.xbar", "dram"
        StallCause cause = StallCause::UpstreamEmpty;
        std::uint64_t cycles = 0;
    };

    struct PhaseSummary
    {
        std::string name;
        Cycle begin = 0;
        Cycle end = 0;
        /** Stall cycles accumulated within the phase, indexed like
         *  TelemetrySummary::stalls. */
        std::vector<std::uint64_t> stalls;
    };

    struct QueueSummary
    {
        std::string name;
        std::size_t capacity = 0;  //!< 0 = growable (no fixed "full")
        std::size_t high_water = 0;
        Cycle time_at_full = 0;
        double avg_depth = 0;
        std::vector<Cycle> cycles_at_depth;
    };

    std::string label;
    Cycle total_cycles = 0;
    Cycle window_cycles = 0;  //!< final effective window width
    std::vector<std::string> series;
    std::vector<bool> series_is_level;
    /** Final cumulative counter value (or last level sample). */
    std::vector<double> series_totals;
    std::vector<Window> windows;
    /** One entry per registered (group, cause) pair. */
    std::vector<StallTotal> stalls;
    std::vector<PhaseSummary> phases;
    std::vector<QueueSummary> queues;

    /** Final value of @p series_name; 0 when not registered. */
    double total(const std::string& series_name) const;

    /** Stall cycles for @p cause, restricted to @p group when
     *  non-empty. */
    std::uint64_t stallCycles(const std::string& group,
                              StallCause cause) const;

    /** Sum of every attributed stall cycle. */
    std::uint64_t totalStallCycles() const;

    /** Share (0..1) of @p cause among all attributed stall cycles
     *  across groups; 0 when nothing stalled. */
    double stallShare(StallCause cause) const;

    /** Heaviest (group, cause) entry; null when nothing stalled. */
    const StallTotal* topStall() const;
};

/** Multi-line human-readable report naming the limiting resource per
 *  phase and overall (top stall causes, hot queues). */
std::string bottleneckReport(const TelemetrySummary& summary);

/**
 * The per-run collector. Components register their counters, stall
 * channels and queues right after construction (see the
 * registerTelemetry() methods); the Accelerator brackets iterations
 * with beginPhase()/endPhase() and calls finalize() at the end of
 * run().
 */
class Telemetry : public Component
{
  public:
    /** Registers itself with @p engine as the sampler component. */
    Telemetry(Engine& engine, const TelemetryConfig& cfg);
    ~Telemetry() override;

    // -- registration (before the run starts) ---------------------------
    /** Add @p src to counter series @p series (multiple sources sum). */
    void addCounter(const std::string& series, const std::uint64_t* src);

    /** Add an instantaneous gauge to level series @p series (multiple
     *  probes sum; sampled at each window close). */
    void addLevel(const std::string& series,
                  std::function<double()> probe);

    /**
     * Register @p src as stall cycles of @p cause in @p group. Also
     * feeds the counter series "stall.<group>.<cause-name>" so stalls
     * appear in the windowed views and the exported trace.
     */
    void addStall(const std::string& group, StallCause cause,
                  const std::uint64_t* src);

    /** Create (and own) a queue probe; attach the returned pointer to a
     *  TimedQueue/RingDeque. @p capacity 0 = growable. */
    QueueProbe* makeQueueProbe(std::string name, std::size_t capacity);

    // -- phases ---------------------------------------------------------
    /** Start a named phase (implicitly ends the previous one). */
    void beginPhase(std::string name);
    void endPhase();

    // -- engine integration ---------------------------------------------
    void tick() override;
    Cycle nextActivity() const override;

    /** Close the books and build the immutable summary; idempotent.
     *  Must be called while the instrumented components are alive. */
    std::shared_ptr<const TelemetrySummary> finalize();

  private:
    struct Series
    {
        std::string name;
        bool level = false;
        std::vector<const std::uint64_t*> counters;
        std::vector<std::function<double()>> probes;
    };

    struct StallKey
    {
        std::string group;
        StallCause cause = StallCause::UpstreamEmpty;
    };

    struct StallChannel
    {
        std::size_t key = 0;  //!< index into stall_keys_
        const std::uint64_t* src = nullptr;
    };

    struct PhaseRecord
    {
        std::string name;
        Cycle begin = 0;
        Cycle end = kCycleNever;
        std::vector<std::uint64_t> stalls_at_begin;
        std::vector<std::uint64_t> stalls_at_end;
    };

    std::size_t seriesIndex(const std::string& name, bool level);
    double sampleSeries(const Series& s) const;
    /** Current per-key stall totals (sum of channels). */
    std::vector<std::uint64_t> stallSnapshot() const;
    void closeWindow(Cycle end);
    void decimate();

    Engine& engine_;
    TelemetryConfig cfg_;
    Cycle window_cycles_;       //!< current width (doubles on decimate)
    Cycle window_begin_ = 0;
    Cycle next_sample_ = 0;
    std::vector<Series> series_;
    std::vector<double> prev_sample_;
    std::vector<StallKey> stall_keys_;
    std::vector<StallChannel> stall_channels_;
    std::vector<PhaseRecord> phases_;
    std::vector<TelemetrySummary::Window> windows_;
    std::vector<std::unique_ptr<QueueProbe>> probes_;
    bool finalized_ = false;
    std::shared_ptr<const TelemetrySummary> summary_;
};

} // namespace gmoms

#endif // GMOMS_OBS_TELEMETRY_HH
