#include "src/obs/telemetry.hh"

#include <algorithm>
#include <sstream>

#include "src/sim/log.hh"

namespace gmoms
{

const char*
stallCauseName(StallCause cause)
{
    switch (cause) {
      case StallCause::UpstreamEmpty: return "upstream-empty";
      case StallCause::DownstreamBackpressure:
        return "downstream-backpressure";
      case StallCause::BankConflict: return "bank-conflict";
      case StallCause::MshrFull: return "mshr-full";
      case StallCause::SubentryFull: return "subentry-full";
      case StallCause::RowMiss: return "row-miss";
      case StallCause::CrossingCredit: return "crossing-credit";
      case StallCause::RawHazard: return "raw-hazard";
      case StallCause::ThreadSlotsFull: return "thread-slots-full";
      case StallCause::BoardLink: return "board-link";
    }
    return "?";
}

// ---------------------------------------------------------------------
// TelemetrySummary queries
// ---------------------------------------------------------------------

double
TelemetrySummary::total(const std::string& series_name) const
{
    for (std::size_t i = 0; i < series.size(); ++i)
        if (series[i] == series_name)
            return series_totals[i];
    return 0.0;
}

std::uint64_t
TelemetrySummary::stallCycles(const std::string& group,
                              StallCause cause) const
{
    std::uint64_t total = 0;
    for (const StallTotal& s : stalls)
        if (s.cause == cause && (group.empty() || s.group == group))
            total += s.cycles;
    return total;
}

std::uint64_t
TelemetrySummary::totalStallCycles() const
{
    std::uint64_t total = 0;
    for (const StallTotal& s : stalls)
        total += s.cycles;
    return total;
}

double
TelemetrySummary::stallShare(StallCause cause) const
{
    const std::uint64_t all = totalStallCycles();
    if (all == 0)
        return 0.0;
    return static_cast<double>(stallCycles("", cause)) /
           static_cast<double>(all);
}

const TelemetrySummary::StallTotal*
TelemetrySummary::topStall() const
{
    const StallTotal* top = nullptr;
    for (const StallTotal& s : stalls)
        if (s.cycles > 0 && (top == nullptr || s.cycles > top->cycles))
            top = &s;
    return top;
}

std::string
bottleneckReport(const TelemetrySummary& summary)
{
    std::ostringstream os;
    os << "bottleneck report";
    if (!summary.label.empty())
        os << " [" << summary.label << "]";
    os << " — " << summary.total_cycles << " cycles, window "
       << summary.window_cycles << "\n";

    const std::uint64_t all = summary.totalStallCycles();
    auto describe = [&](const std::vector<std::uint64_t>& stalls,
                        std::uint64_t denom) {
        // Top two (group, cause) entries of this stall vector.
        std::size_t first = stalls.size(), second = stalls.size();
        for (std::size_t i = 0; i < stalls.size(); ++i) {
            if (stalls[i] == 0)
                continue;
            if (first == stalls.size() || stalls[i] > stalls[first]) {
                second = first;
                first = i;
            } else if (second == stalls.size() ||
                       stalls[i] > stalls[second]) {
                second = i;
            }
        }
        if (first == stalls.size() || denom == 0) {
            os << "no attributed stalls";
            return;
        }
        auto one = [&](std::size_t i) {
            const auto& key = summary.stalls[i];
            os << key.group << "/" << stallCauseName(key.cause) << " ("
               << (100.0 * static_cast<double>(stalls[i]) /
                   static_cast<double>(denom))
               << "%)";
        };
        os << "top ";
        one(first);
        if (second != stalls.size()) {
            os << ", then ";
            one(second);
        }
    };

    {
        std::vector<std::uint64_t> totals(summary.stalls.size(), 0);
        for (std::size_t i = 0; i < summary.stalls.size(); ++i)
            totals[i] = summary.stalls[i].cycles;
        os << "  overall: ";
        describe(totals, all);
        os << "\n";
    }

    for (const auto& phase : summary.phases) {
        std::uint64_t phase_total = 0;
        for (std::uint64_t s : phase.stalls)
            phase_total += s;
        os << "  phase " << phase.name << " [" << phase.begin << ".."
           << phase.end << "]: ";
        describe(phase.stalls, phase_total);
        os << "\n";
    }

    // Hottest queues by time spent full (bounded) or high water.
    std::vector<const TelemetrySummary::QueueSummary*> hot;
    for (const auto& q : summary.queues)
        if (q.time_at_full > 0)
            hot.push_back(&q);
    std::sort(hot.begin(), hot.end(), [](const auto* a, const auto* b) {
        return a->time_at_full > b->time_at_full;
    });
    if (hot.size() > 5)
        hot.resize(5);
    for (const auto* q : hot)
        os << "  queue " << q->name << ": full "
           << (summary.total_cycles
                   ? 100.0 * static_cast<double>(q->time_at_full) /
                         static_cast<double>(summary.total_cycles)
                   : 0.0)
           << "% of run, high water " << q->high_water << "/"
           << q->capacity << "\n";
    return os.str();
}

// ---------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------

Telemetry::Telemetry(Engine& engine, const TelemetryConfig& cfg)
    : Component("telemetry"), engine_(engine), cfg_(cfg),
      window_cycles_(std::max<Cycle>(1, cfg.window_cycles))
{
    cfg_.max_windows = std::max<std::size_t>(2, cfg_.max_windows) &
                       ~static_cast<std::size_t>(1);
    window_begin_ = engine.now();
    next_sample_ = window_begin_ + window_cycles_;
    engine.add(this);
}

Telemetry::~Telemetry() = default;

std::size_t
Telemetry::seriesIndex(const std::string& name, bool level)
{
    for (std::size_t i = 0; i < series_.size(); ++i)
        if (series_[i].name == name) {
            if (series_[i].level != level)
                fatal("telemetry series '" + name +
                      "' registered as both counter and level");
            return i;
        }
    series_.push_back(Series{name, level, {}, {}});
    prev_sample_.push_back(0.0);
    return series_.size() - 1;
}

void
Telemetry::addCounter(const std::string& series,
                      const std::uint64_t* src)
{
    series_[seriesIndex(series, false)].counters.push_back(src);
}

void
Telemetry::addLevel(const std::string& series,
                    std::function<double()> probe)
{
    series_[seriesIndex(series, true)].probes.push_back(
        std::move(probe));
}

void
Telemetry::addStall(const std::string& group, StallCause cause,
                    const std::uint64_t* src)
{
    std::size_t key = stall_keys_.size();
    for (std::size_t i = 0; i < stall_keys_.size(); ++i)
        if (stall_keys_[i].group == group &&
            stall_keys_[i].cause == cause) {
            key = i;
            break;
        }
    if (key == stall_keys_.size())
        stall_keys_.push_back(StallKey{group, cause});
    stall_channels_.push_back(StallChannel{key, src});
    addCounter("stall." + group + "." + stallCauseName(cause), src);
}

QueueProbe*
Telemetry::makeQueueProbe(std::string name, std::size_t capacity)
{
    probes_.push_back(
        std::make_unique<QueueProbe>(std::move(name), capacity));
    return probes_.back().get();
}

void
Telemetry::beginPhase(std::string name)
{
    endPhase();
    PhaseRecord rec;
    rec.name = std::move(name);
    rec.begin = engine_.now();
    rec.stalls_at_begin = stallSnapshot();
    phases_.push_back(std::move(rec));
}

void
Telemetry::endPhase()
{
    if (phases_.empty() || phases_.back().end != kCycleNever)
        return;
    phases_.back().end = engine_.now();
    phases_.back().stalls_at_end = stallSnapshot();
}

std::vector<std::uint64_t>
Telemetry::stallSnapshot() const
{
    std::vector<std::uint64_t> snap(stall_keys_.size(), 0);
    for (const StallChannel& ch : stall_channels_)
        snap[ch.key] += *ch.src;
    return snap;
}

double
Telemetry::sampleSeries(const Series& s) const
{
    double v = 0.0;
    for (const std::uint64_t* c : s.counters)
        v += static_cast<double>(*c);
    for (const auto& p : s.probes)
        v += p();
    return v;
}

void
Telemetry::tick()
{
    // Woken either at a window boundary (nextActivity) or spuriously by
    // wakeAll() / full-tick mode: the guard makes both engine modes
    // sample at exactly the same cycles.
    const Cycle now = engine_.now();
    if (now < next_sample_)
        return;
    closeWindow(now);
    next_sample_ = now + window_cycles_;
}

Cycle
Telemetry::nextActivity() const
{
    return next_sample_;
}

void
Telemetry::closeWindow(Cycle end)
{
    if (end <= window_begin_)
        return;
    TelemetrySummary::Window w;
    w.begin = window_begin_;
    w.end = end;
    w.values.resize(series_.size(), 0.0);
    for (std::size_t i = 0; i < series_.size(); ++i) {
        const double cur = sampleSeries(series_[i]);
        w.values[i] = series_[i].level ? cur : cur - prev_sample_[i];
        prev_sample_[i] = cur;
    }
    windows_.push_back(std::move(w));
    window_begin_ = end;
    if (windows_.size() >= cfg_.max_windows)
        decimate();
}

void
Telemetry::decimate()
{
    // Merge adjacent window pairs and double the width: counter deltas
    // sum, level samples keep the later reading.
    const std::size_t n = windows_.size();
    std::vector<TelemetrySummary::Window> merged;
    merged.reserve(cfg_.max_windows);
    for (std::size_t i = 0; i + 1 < n; i += 2) {
        TelemetrySummary::Window m = std::move(windows_[i]);
        const TelemetrySummary::Window& b = windows_[i + 1];
        m.end = b.end;
        m.values.resize(series_.size(), 0.0);
        for (std::size_t s = 0;
             s < series_.size() && s < b.values.size(); ++s) {
            if (series_[s].level)
                m.values[s] = b.values[s];
            else
                m.values[s] += b.values[s];
        }
        merged.push_back(std::move(m));
    }
    if (n % 2 != 0)
        merged.push_back(std::move(windows_.back()));
    windows_ = std::move(merged);
    window_cycles_ *= 2;
}

std::shared_ptr<const TelemetrySummary>
Telemetry::finalize()
{
    if (finalized_)
        return summary_;
    const Cycle now = engine_.now();
    closeWindow(now);
    endPhase();

    auto s = std::make_shared<TelemetrySummary>();
    s->label = cfg_.label;
    s->total_cycles = now;
    s->window_cycles = window_cycles_;
    s->series.reserve(series_.size());
    for (const Series& ser : series_) {
        s->series.push_back(ser.name);
        s->series_is_level.push_back(ser.level);
        s->series_totals.push_back(sampleSeries(ser));
    }
    s->windows = std::move(windows_);

    const std::vector<std::uint64_t> totals = stallSnapshot();
    s->stalls.reserve(stall_keys_.size());
    for (std::size_t i = 0; i < stall_keys_.size(); ++i)
        s->stalls.push_back(TelemetrySummary::StallTotal{
            stall_keys_[i].group, stall_keys_[i].cause, totals[i]});

    for (const PhaseRecord& rec : phases_) {
        TelemetrySummary::PhaseSummary ph;
        ph.name = rec.name;
        ph.begin = rec.begin;
        ph.end = rec.end == kCycleNever ? now : rec.end;
        ph.stalls.resize(stall_keys_.size(), 0);
        for (std::size_t i = 0; i < stall_keys_.size(); ++i) {
            const std::uint64_t b = i < rec.stalls_at_begin.size()
                                        ? rec.stalls_at_begin[i]
                                        : 0;
            const std::uint64_t e =
                i < rec.stalls_at_end.size() ? rec.stalls_at_end[i] : b;
            ph.stalls[i] = e >= b ? e - b : 0;
        }
        s->phases.push_back(std::move(ph));
    }

    for (const auto& probe : probes_) {
        probe->finalize(now);
        TelemetrySummary::QueueSummary q;
        q.name = probe->name();
        q.capacity = probe->capacity();
        q.high_water = probe->highWater();
        q.time_at_full = probe->timeAtFull();
        q.avg_depth = probe->avgDepth();
        q.cycles_at_depth = probe->cyclesAtDepth();
        s->queues.push_back(std::move(q));
    }

    finalized_ = true;
    summary_ = std::move(s);
    return summary_;
}

} // namespace gmoms
