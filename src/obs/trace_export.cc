#include "src/obs/trace_export.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "src/sim/report.hh"

namespace gmoms
{

namespace
{

/** args sub-object {"name": <value>} for metadata events. */
JsonReport::Raw
nameArgs(const std::string& name)
{
    JsonReport args;
    args.set("name", name);
    return JsonReport::Raw{args.str()};
}

/** Counter values round-trip better as integers when they are ones. */
JsonReport::Value
numberValue(double v)
{
    if (v >= 0 && v < 9.007199254740992e15 && std::nearbyint(v) == v)
        return static_cast<std::uint64_t>(v);
    return v;
}

void
writeEvent(std::ostream& os, bool& first, const JsonReport& event)
{
    if (!first)
        os << ",\n";
    first = false;
    event.write(os);
}

} // namespace

void
writeChromeTrace(std::ostream& os,
                 const std::vector<TelemetrySummaryPtr>& runs)
{
    os << "{\"traceEvents\":[\n";
    bool first = true;
    for (std::size_t r = 0; r < runs.size(); ++r) {
        if (runs[r] == nullptr)
            continue;
        const TelemetrySummary& run = *runs[r];
        const std::uint64_t pid = r + 1;

        {
            JsonReport meta;
            meta.set("name", std::string("process_name"))
                .set("ph", std::string("M"))
                .set("pid", pid)
                .set("tid", std::uint64_t{0})
                .set("args", nameArgs(run.label.empty()
                                          ? "run " + std::to_string(pid)
                                          : run.label));
            writeEvent(os, first, meta);
        }

        for (const auto& phase : run.phases) {
            JsonReport ev;
            ev.set("name", phase.name)
                .set("ph", std::string("X"))
                .set("cat", std::string("phase"))
                .set("pid", pid)
                .set("tid", std::uint64_t{0})
                .set("ts", static_cast<std::uint64_t>(phase.begin))
                .set("dur", static_cast<std::uint64_t>(
                                phase.end - phase.begin));
            writeEvent(os, first, ev);
        }

        for (std::size_t s = 0; s < run.series.size(); ++s) {
            bool any = false;
            for (const auto& w : run.windows)
                if (s < w.values.size() && w.values[s] != 0.0) {
                    any = true;
                    break;
                }
            if (!any)
                continue;
            for (const auto& w : run.windows) {
                JsonReport args;
                args.set("value",
                         numberValue(s < w.values.size() ? w.values[s]
                                                         : 0.0));
                JsonReport ev;
                ev.set("name", run.series[s])
                    .set("ph", std::string("C"))
                    .set("pid", pid)
                    .set("ts", static_cast<std::uint64_t>(w.begin))
                    .set("args", JsonReport::Raw{args.str()});
                writeEvent(os, first, ev);
            }
        }
    }
    os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":"
          "{\"tool\":\"gmoms\",\"time_unit\":\"1 cycle = 1 us\"}}\n";
}

std::string
chromeTraceString(const std::vector<TelemetrySummaryPtr>& runs)
{
    std::ostringstream ss;
    writeChromeTrace(ss, runs);
    return ss.str();
}

bool
writeChromeTraceFile(const std::string& path,
                     const std::vector<TelemetrySummaryPtr>& runs)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeChromeTrace(os, runs);
    return os.good();
}

} // namespace gmoms
