/**
 * @file
 * Minimal JSON parser for validity checks and round-trip tests.
 *
 * This is deliberately not a general-purpose JSON library: it exists so
 * tests can prove that everything the simulator *writes* (JsonReport
 * bench records, the Chrome trace exporter) is well-formed and parses
 * back to the expected values, without adding a dependency. It accepts
 * strict RFC 8259 JSON (objects, arrays, strings with escapes including
 * \uXXXX, numbers, true/false/null) and rejects trailing garbage.
 */

#ifndef GMOMS_OBS_JSON_CHECK_HH
#define GMOMS_OBS_JSON_CHECK_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gmoms
{

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /** Exact source lexeme of a Number — `number` is a double, which
     *  silently rounds integers above 2^53 (values_checksum is a full
     *  uint64), so bit-exact consumers re-parse this instead. */
    std::string raw;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** First member named @p key; null when absent or not an object. */
    const JsonValue* find(const std::string& key) const;

    /** The value as an exact uint64 (from the raw lexeme); @p fallback
     *  when this is not a non-negative integer number. */
    std::uint64_t asUint64(std::uint64_t fallback = 0) const;
};

/**
 * Parse @p text as a single JSON value. Returns nullopt on any syntax
 * error (including trailing non-whitespace); when @p error is non-null
 * it receives a short description with the byte offset.
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string* error = nullptr);

} // namespace gmoms

#endif // GMOMS_OBS_JSON_CHECK_HH
