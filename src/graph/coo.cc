#include "src/graph/coo.hh"

#include "src/sim/log.hh"

namespace gmoms
{

std::vector<std::uint32_t>
CooGraph::outDegrees() const
{
    std::vector<std::uint32_t> deg(num_nodes_, 0);
    for (const Edge& e : edges_)
        ++deg[e.src];
    return deg;
}

std::vector<std::uint32_t>
CooGraph::inDegrees() const
{
    std::vector<std::uint32_t> deg(num_nodes_, 0);
    for (const Edge& e : edges_)
        ++deg[e.dst];
    return deg;
}

CooGraph
CooGraph::relabeled(const std::vector<NodeId>& new_label) const
{
    if (new_label.size() != num_nodes_)
        fatal("relabeled: permutation size mismatch");
    CooGraph out(num_nodes_, weighted_);
    out.name = name;
    out.edges_.reserve(edges_.size());
    for (const Edge& e : edges_)
        out.edges_.push_back(
            Edge{new_label[e.src], new_label[e.dst], e.weight});
    return out;
}

CooGraph
CooGraph::withReverseEdges() const
{
    CooGraph out(num_nodes_, weighted_);
    out.name = name;
    out.edges_.reserve(2 * edges_.size());
    for (const Edge& e : edges_) {
        out.edges_.push_back(e);
        out.edges_.push_back(Edge{e.dst, e.src, e.weight});
    }
    return out;
}

} // namespace gmoms
