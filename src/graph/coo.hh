/**
 * @file
 * Coordinate-format (COO) graph representation — the input format the
 * accelerator accepts (Section III-C of the paper).
 */

#ifndef GMOMS_GRAPH_COO_HH
#define GMOMS_GRAPH_COO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/types.hh"

namespace gmoms
{

/** One directed edge; weight is ignored for unweighted graphs. */
struct Edge
{
    NodeId src = 0;
    NodeId dst = 0;
    std::uint32_t weight = 0;
};

/**
 * A directed graph as an edge list.
 *
 * Node ids are dense in [0, numNodes). Undirected graphs are handled by
 * duplicating each edge (paper, Section III).
 */
class CooGraph
{
  public:
    CooGraph() = default;
    explicit CooGraph(NodeId num_nodes, bool weighted = false)
        : num_nodes_(num_nodes), weighted_(weighted) {}

    NodeId numNodes() const { return num_nodes_; }
    EdgeId numEdges() const { return edges_.size(); }
    bool weighted() const { return weighted_; }
    void setWeighted(bool w) { weighted_ = w; }

    void
    addEdge(NodeId src, NodeId dst, std::uint32_t weight = 0)
    {
        edges_.push_back(Edge{src, dst, weight});
    }

    std::vector<Edge>& edges() { return edges_; }
    const std::vector<Edge>& edges() const { return edges_; }

    /** Out-degree of every node (O(M)). */
    std::vector<std::uint32_t> outDegrees() const;

    /** In-degree of every node (O(M)). */
    std::vector<std::uint32_t> inDegrees() const;

    /**
     * Relabel nodes: node i becomes new_label[i] in the result. Edge
     * order is preserved. @p new_label must be a permutation.
     */
    CooGraph relabeled(const std::vector<NodeId>& new_label) const;

    /** Append the reverse of every edge (undirected handling). */
    CooGraph withReverseEdges() const;

    std::string name;  //!< dataset name for reports

  private:
    NodeId num_nodes_ = 0;
    bool weighted_ = false;
    std::vector<Edge> edges_;
};

} // namespace gmoms

#endif // GMOMS_GRAPH_COO_HH
