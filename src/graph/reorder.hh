/**
 * @file
 * Node reordering techniques (Section IV-E of the paper).
 *
 * All functions return a permutation `new_label` such that node i of the
 * input graph becomes node new_label[i]; apply with CooGraph::relabeled().
 */

#ifndef GMOMS_GRAPH_REORDER_HH
#define GMOMS_GRAPH_REORDER_HH

#include <cstdint>
#include <vector>

#include "src/graph/coo.hh"

namespace gmoms
{

/**
 * ForeGraph/FabGraph-style hash relabeling: node i goes to destination
 * interval (i mod Qd). Balances in-edges across intervals but destroys
 * label-space clusters.
 */
std::vector<NodeId> hashNodeIntervals(NodeId num_nodes, std::uint32_t nd);

/**
 * The paper's variant: keep 64-byte cache lines intact (16 consecutive
 * 32-bit node values) and deal whole lines round-robin among destination
 * intervals. Balances load while preserving intra-line reuse.
 */
std::vector<NodeId> hashCacheLines(NodeId num_nodes, std::uint32_t nd);

/**
 * Degree-Based Grouping [Faldu et al. IISWC'19]: coarsely partition nodes
 * into 8 groups by out-degree (highest degree first), preserving original
 * order within each group. O(N).
 */
std::vector<NodeId> dbgReorder(const CooGraph& g);

/** Compose permutations: apply @p first, then @p second. */
std::vector<NodeId> composePermutations(const std::vector<NodeId>& first,
                                        const std::vector<NodeId>& second);

/** Verify that @p perm is a permutation of [0, n). */
bool isPermutation(const std::vector<NodeId>& perm);

/** Preprocessing selector used by benches (Fig. 13 series). */
enum class Preprocessing
{
    None,        //!< partitioning only
    Hash,        //!< cache-line hashing
    Dbg,         //!< DBG only
    DbgHash,     //!< DBG then cache-line hashing (paper default)
    Packed,      //!< packed half-word CSR, no relabeling
    DbgHashPacked,  //!< DBG + hashing + packed CSR
};

/** Human-readable name for a Preprocessing value. */
const char* preprocessingName(Preprocessing p);

/** Whether @p p requests the packed half-word CSR edge encoding (a
 *  layout-time transform: it changes the DRAM image, not the node
 *  labels, so it composes freely with any relabeling). */
bool packedCsr(Preprocessing p);

/** The relabeling component of @p p with the packed flag stripped:
 *  Packed -> None, DbgHashPacked -> DbgHash, everything else itself.
 *  applyPreprocessing() only ever sees base variants. */
Preprocessing basePreprocessing(Preprocessing p);

/**
 * Apply the selected preprocessing to @p g for destination intervals of
 * @p nd nodes; returns the relabeled graph.
 */
CooGraph applyPreprocessing(const CooGraph& g, Preprocessing p,
                            std::uint32_t nd);

} // namespace gmoms

#endif // GMOMS_GRAPH_REORDER_HH
