#include "src/graph/generator.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/sim/log.hh"

namespace gmoms
{

CooGraph
rmat(std::uint32_t scale, EdgeId num_edges, const RmatParams& params,
     std::uint64_t seed)
{
    const NodeId n = NodeId{1} << scale;
    CooGraph g(n);
    g.edges().reserve(num_edges);
    Rng rng(seed);
    const double d = 1.0 - params.a - params.b - params.c;
    if (d < 0)
        fatal("rmat: probabilities exceed 1");
    for (EdgeId i = 0; i < num_edges; ++i) {
        NodeId src = 0, dst = 0;
        for (std::uint32_t level = 0; level < scale; ++level) {
            // Perturb the quadrant probabilities per level so degrees
            // do not collapse onto exact powers (standard RMAT noise).
            double na = params.a *
                (1.0 + params.noise * (rng.uniform() - 0.5));
            double nb = params.b *
                (1.0 + params.noise * (rng.uniform() - 0.5));
            double nc = params.c *
                (1.0 + params.noise * (rng.uniform() - 0.5));
            double nd = d * (1.0 + params.noise * (rng.uniform() - 0.5));
            const double total = na + nb + nc + nd;
            const double u = rng.uniform() * total;
            src <<= 1;
            dst <<= 1;
            if (u < na) {
                // top-left quadrant: no bits set
            } else if (u < na + nb) {
                dst |= 1;
            } else if (u < na + nb + nc) {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        g.addEdge(src, dst);
    }
    return g;
}

CooGraph
powerLaw(NodeId num_nodes, EdgeId num_edges, double alpha, double locality,
         NodeId window, std::uint64_t seed)
{
    if (num_nodes == 0)
        fatal("powerLaw: empty graph");
    CooGraph g(num_nodes);
    g.edges().reserve(num_edges);
    Rng rng(seed);

    // Build a cumulative Zipf(alpha) distribution over node ranks for
    // choosing sources; rank r has weight (r+1)^-alpha.
    std::vector<double> cum(num_nodes);
    double acc = 0.0;
    for (NodeId i = 0; i < num_nodes; ++i) {
        acc += std::pow(static_cast<double>(i) + 1.0, -alpha);
        cum[i] = acc;
    }
    for (EdgeId e = 0; e < num_edges; ++e) {
        const double u = rng.uniform() * acc;
        const auto it = std::lower_bound(cum.begin(), cum.end(), u);
        const NodeId src =
            static_cast<NodeId>(std::distance(cum.begin(), it));
        NodeId dst;
        if (rng.uniform() < locality && window > 0) {
            const NodeId lo = src > window / 2 ? src - window / 2 : 0;
            const NodeId span =
                std::min<NodeId>(window, num_nodes - lo);
            dst = lo + static_cast<NodeId>(rng.below(span));
        } else {
            dst = static_cast<NodeId>(rng.below(num_nodes));
        }
        g.addEdge(src, dst);
    }
    return g;
}

CooGraph
uniformRandom(NodeId num_nodes, EdgeId num_edges, std::uint64_t seed)
{
    CooGraph g(num_nodes);
    g.edges().reserve(num_edges);
    Rng rng(seed);
    for (EdgeId e = 0; e < num_edges; ++e)
        g.addEdge(static_cast<NodeId>(rng.below(num_nodes)),
                  static_cast<NodeId>(rng.below(num_nodes)));
    return g;
}

CooGraph
grid2d(NodeId rows, NodeId cols)
{
    CooGraph g(rows * cols);
    auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
    for (NodeId r = 0; r < rows; ++r) {
        for (NodeId c = 0; c < cols; ++c) {
            if (c + 1 < cols) {
                g.addEdge(id(r, c), id(r, c + 1));
                g.addEdge(id(r, c + 1), id(r, c));
            }
            if (r + 1 < rows) {
                g.addEdge(id(r, c), id(r + 1, c));
                g.addEdge(id(r + 1, c), id(r, c));
            }
        }
    }
    return g;
}

CooGraph
chain(NodeId num_nodes)
{
    CooGraph g(num_nodes);
    for (NodeId i = 0; i + 1 < num_nodes; ++i)
        g.addEdge(i, i + 1);
    return g;
}

CooGraph
star(NodeId num_nodes)
{
    CooGraph g(num_nodes);
    for (NodeId i = 1; i < num_nodes; ++i)
        g.addEdge(0, i);
    return g;
}

void
addRandomWeights(CooGraph& g, std::uint64_t seed)
{
    Rng rng(seed);
    for (Edge& e : g.edges())
        e.weight = static_cast<std::uint32_t>(rng.below(256));
    g.setWeighted(true);
}

std::vector<NodeId>
randomPermutation(NodeId num_nodes, std::uint64_t seed)
{
    std::vector<NodeId> perm(num_nodes);
    std::iota(perm.begin(), perm.end(), NodeId{0});
    Rng rng(seed);
    for (NodeId i = num_nodes; i > 1; --i)
        std::swap(perm[i - 1], perm[rng.below(i)]);
    return perm;
}

} // namespace gmoms
