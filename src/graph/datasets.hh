/**
 * @file
 * Registry of Table II benchmark graphs and their synthetic stand-ins.
 *
 * The paper evaluates on 9 real-world graphs plus 3 RMAT graphs (Table
 * II). Real datasets are not redistributable here, so each gets a
 * synthetic profile that preserves the properties the memory system is
 * sensitive to — node/edge counts (scaled down for simulation speed),
 * degree skew, and whether the native labeling preserves communities
 * (web graphs: yes; social graphs and RMAT: no, per Section V-C).
 */

#ifndef GMOMS_GRAPH_DATASETS_HH
#define GMOMS_GRAPH_DATASETS_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/coo.hh"

namespace gmoms
{

struct DatasetProfile
{
    std::string tag;        //!< two-letter code used in the paper
    std::string full_name;  //!< dataset name from Table II
    std::uint64_t paper_nodes;  //!< N in Table II
    std::uint64_t paper_edges;  //!< M in Table II
    std::uint32_t scale_divisor; //!< our stand-in is paper size / divisor

    enum class Family { Web, Social, Rmat } family;
    /** Web graphs keep clustered labels; social/RMAT get a random
     *  label shuffle to model community-destroying native labeling. */
    bool labels_preserve_communities;

    /** Edge-count cap applied after scaling — a PER-BOARD
     *  simulation-time budget; see datasets.cc for the rationale. */
    static constexpr EdgeId kEdgeCap = 1'200'000;

    NodeId nodes() const
    {
        return static_cast<NodeId>(paper_nodes / scale_divisor);
    }
    /**
     * Scaled edge count, capped at kEdgeCap * @p boards. The cap is a
     * wall-clock budget for ONE simulated board; a multi-board cluster
     * divides the edge work across boards, so partitioned runs raise
     * the ceiling proportionally and can exceed the historical 1.2M
     * single-board cap (EXPERIMENTS.md, "Multi-board scale-out").
     */
    EdgeId
    edges(std::uint32_t boards = 1) const
    {
        return std::min<EdgeId>(paper_edges / scale_divisor,
                                kEdgeCap * std::max(boards, 1u));
    }
};

/** All 12 Table II profiles, in paper order. */
const std::vector<DatasetProfile>& table2Profiles();

/** Profile by two-letter tag ("WT", "DB", ..., "24"). */
const DatasetProfile& datasetByTag(const std::string& tag);

/**
 * Build the synthetic stand-in for @p profile (deterministic in
 * @p seed). The result has profile.nodes()/edges(boards) sizes:
 * @p boards > 1 raises the per-board edge cap for partitioned runs.
 */
CooGraph buildDataset(const DatasetProfile& profile,
                      std::uint64_t seed = 1,
                      std::uint32_t boards = 1);

/**
 * The subset of tags used by quick benches; the GMOMS_FULL_DATASETS=1
 * environment variable switches every bench to all 12.
 */
std::vector<std::string> benchDatasetTags();

} // namespace gmoms

#endif // GMOMS_GRAPH_DATASETS_HH
