/**
 * @file
 * DRAM image of a partitioned graph (Fig. 4 of the paper).
 *
 * Layout, low to high addresses:
 *   (i)   node arrays: V_DRAM,in, optional V_const, optional V_DRAM,out
 *         (synchronous execution), each 32 bits per node;
 *   (ii)  edges, organized by shard (destination-major), in 32-bit
 *         compressed format with a terminating edge per shard;
 *   (iii) edge pointers, one 64-bit entry per shard, carrying start
 *         address, size and the active_srcs flag.
 *
 * Compressed edge word: [31] isTerminatingEdge, [30:15] source offset in
 * its source interval (16 bits), [14:0] destination offset in its
 * destination interval (15 bits). Weighted edges append a 32-bit weight
 * word. Shards start 64-byte aligned; padding words carry the
 * terminating flag so PEs ignore trailing data in the last DRAM word.
 */

#ifndef GMOMS_GRAPH_LAYOUT_HH
#define GMOMS_GRAPH_LAYOUT_HH

#include <cstdint>
#include <functional>

#include "src/graph/partition.hh"
#include "src/mem/backing_store.hh"
#include "src/sim/types.hh"

namespace gmoms
{

/** Compressed 32-bit edge word helpers. */
namespace edgeword
{

inline constexpr std::uint32_t kTerminating = 0x80000000u;

constexpr std::uint32_t
pack(std::uint32_t src_off, std::uint32_t dst_off)
{
    return ((src_off & 0xffffu) << 15) | (dst_off & 0x7fffu);
}

constexpr bool isTerminating(std::uint32_t w) { return w & kTerminating; }
constexpr std::uint32_t srcOff(std::uint32_t w)
{
    return (w >> 15) & 0xffffu;
}
constexpr std::uint32_t dstOff(std::uint32_t w) { return w & 0x7fffu; }

} // namespace edgeword

/**
 * Packed half-word CSR (degree-aware vertex packing).
 *
 * Edges of a shard are sorted by (dst_off, src_off) and encoded as a
 * stream of 16-bit half-words in self-contained 64-byte lines (32
 * half-words per line):
 *
 *   selector  [15]=1, [14:0] dst_off — opens a destination group; all
 *             following source half-words until the next selector
 *             target this destination.
 *   source    [15]=0, [14:0] src_off — one in-edge of the open
 *             destination. Weighted shards append one raw 16-bit
 *             weight half-word after each source.
 *   0xFFFF    padding — skipped instantly; fills the tail of a line
 *             when the next unit would straddle the line boundary, and
 *             the tail of the shard.
 *
 * Every line begins with a selector (re-issued across line breaks), so
 * any 64-byte burst decodes without state from earlier lines. A
 * (source, weight) pair never splits across lines. 0xFFFF can never be
 * a real selector because eligibility requires nd <= 32767.
 *
 * Eligibility (checked per layout; ineligible partitions silently fall
 * back to the plain 32-bit encoding): ns <= 32768 (15-bit src_off),
 * nd <= 32767, and every weight <= 65535. The packed reorder of edges
 * within a shard is value-invariant: every gather is commutative.
 */
namespace packedcsr
{

inline constexpr std::uint16_t kSelector = 0x8000u;
inline constexpr std::uint16_t kPad = 0xffffu;
inline constexpr std::uint32_t kHalfwordsPerLine = kLineBytes / 2;

constexpr std::uint16_t
selector(std::uint32_t dst_off)
{
    return static_cast<std::uint16_t>(kSelector | (dst_off & 0x7fffu));
}

constexpr std::uint16_t
source(std::uint32_t src_off)
{
    return static_cast<std::uint16_t>(src_off & 0x7fffu);
}

constexpr bool isPad(std::uint16_t h) { return h == kPad; }
constexpr bool isSelector(std::uint16_t h)
{
    return (h & kSelector) != 0;
}
constexpr std::uint32_t dstOff(std::uint16_t h) { return h & 0x7fffu; }
constexpr std::uint32_t srcOff(std::uint16_t h) { return h & 0x7fffu; }

} // namespace packedcsr

/** 64-bit edge-pointer entry helpers: [63] active, [62:40] size in
 *  32-bit words, [39:0] start word address. */
namespace edgeptr
{

inline constexpr std::uint64_t kActive = 1ull << 63;

constexpr std::uint64_t
pack(std::uint64_t start_word, std::uint64_t size_words, bool active)
{
    return (active ? kActive : 0) | ((size_words & 0x7fffffull) << 40) |
           (start_word & 0xffffffffffull);
}

constexpr bool isActive(std::uint64_t p) { return p & kActive; }
constexpr std::uint64_t sizeWords(std::uint64_t p)
{
    return (p >> 40) & 0x7fffffull;
}
constexpr std::uint64_t startWord(std::uint64_t p)
{
    return p & 0xffffffffffull;
}

} // namespace edgeptr

/**
 * Builds and indexes the DRAM image of one partitioned graph.
 *
 * The builder writes into a BackingStore; all section base addresses are
 * then available for the scheduler to hand to PEs as job parameters.
 */
class GraphLayout
{
  public:
    struct Options
    {
        bool has_const = false;    //!< allocate/populate V_const
        bool synchronous = false;  //!< allocate V_DRAM,out
        /** Request the packed half-word CSR edge encoding (see
         *  packedcsr above); silently ignored when the partition is
         *  ineligible — check packed() after construction. */
        bool packed = false;
        /** Initial value of V_DRAM,in for a node. */
        std::function<std::uint32_t(NodeId)> init_value;
        /** Value of V_const for a node (used when has_const). */
        std::function<std::uint32_t(NodeId)> const_value;
    };

    GraphLayout(const PartitionedGraph& pg, const Options& opts);

    /** Total bytes needed; call before build() to size the store. */
    std::uint64_t totalBytes() const { return total_bytes_; }

    /** Write the full image into @p store (resizing if needed). */
    void build(const PartitionedGraph& pg, BackingStore& store);

    // --- section bases --------------------------------------------------
    Addr vInBase() const { return v_in_base_; }
    Addr vOutBase() const { return v_out_base_; }
    Addr vConstBase() const { return v_const_base_; }
    Addr edgeBase() const { return edge_base_; }
    Addr ptrBase() const { return ptr_base_; }

    Addr vInAddr(NodeId n) const { return v_in_base_ + 4ull * n; }
    Addr vOutAddr(NodeId n) const { return v_out_base_ + 4ull * n; }
    Addr vConstAddr(NodeId n) const { return v_const_base_ + 4ull * n; }

    /** Address of the edge-pointer entry for shard E_{s->d}. */
    Addr
    ptrAddr(std::uint32_t s, std::uint32_t d) const
    {
        return ptr_base_ +
               8ull * (static_cast<std::uint64_t>(d) * qs_ + s);
    }

    /** Swap the in/out node arrays (synchronous execution only). */
    void swapInOut();

    /** Set/clear the active_srcs flag of shard E_{s->d} in the store. */
    void setActive(BackingStore& store, std::uint32_t s, std::uint32_t d,
                   bool active) const;
    bool isActive(const BackingStore& store, std::uint32_t s,
                  std::uint32_t d) const;

    bool synchronous() const { return synchronous_; }
    bool weighted() const { return weighted_; }
    bool hasConst() const { return has_const_; }
    /** Whether the edge section actually uses the packed half-word
     *  CSR (requested AND eligible). */
    bool packed() const { return packed_; }
    std::uint32_t qs() const { return qs_; }
    std::uint32_t qd() const { return qd_; }

    /** Bytes occupied by the edge section (useful traffic accounting). */
    std::uint64_t edgeSectionBytes() const { return ptr_base_ - edge_base_; }

  private:
    bool has_const_ = false;
    bool synchronous_ = false;
    bool weighted_ = false;
    bool packed_ = false;
    std::uint32_t qs_ = 0, qd_ = 0;
    NodeId num_nodes_ = 0;
    Options opts_;

    Addr v_in_base_ = 0;
    Addr v_const_base_ = 0;
    Addr v_out_base_ = 0;
    Addr edge_base_ = 0;
    Addr ptr_base_ = 0;
    std::uint64_t total_bytes_ = 0;
};

} // namespace gmoms

#endif // GMOMS_GRAPH_LAYOUT_HH
