#include "src/graph/datasets.hh"

#include <cstdlib>

#include "src/graph/generator.hh"
#include "src/sim/log.hh"
#include "src/sim/types.hh"

namespace gmoms
{

namespace
{

using Family = DatasetProfile::Family;

/** All node counts are scaled by a uniform 1/256 so that each dataset
 *  keeps its paper ratio between node-set size and the (equally scaled)
 *  cache capacities — the quantity that decides whether caching works
 *  (WT ~42% coverage down to WB ~0.9%). Edge counts are paper/256 too,
 *  but capped at 1.2M so a full figure sweep stays within minutes on
 *  one core; the cap lowers M/N on the giant graphs, which is recorded
 *  as a substitution in DESIGN.md. */
const std::vector<DatasetProfile> kProfiles = {
    {"WT", "wiki-Talk",      2'390'000,     5'020'000,    256,
     Family::Social, false},
    {"DB", "dbpedia-link",   18'300'000,    172'000'000,  256,
     Family::Web,    true},
    {"UK", "uk-2005",        39'500'000,    936'000'000,  256,
     Family::Web,    true},
    {"IT", "it-2004",        41'300'000,    1'150'000'000, 256,
     Family::Web,    true},
    {"SK", "sk-2005",        50'600'000,    1'950'000'000, 256,
     Family::Web,    true},
    {"MP", "twitter_mpi",    52'600'000,    1'960'000'000, 256,
     Family::Social, false},
    {"RV", "twitter_rv",     61'600'000,    1'470'000'000, 256,
     Family::Social, false},
    {"FR", "com-friendster", 65'600'000,    1'810'000'000, 256,
     Family::Social, false},
    {"WB", "webbase-2001",   118'000'000,   1'020'000'000, 256,
     Family::Web,    true},
    {"24", "RMAT-24",        16'800'000,    268'000'000,  256,
     Family::Rmat,   false},
    {"25", "RMAT-25",        33'600'000,    537'000'000,  256,
     Family::Rmat,   false},
    {"26", "RMAT-26",        67'100'000,    1'070'000'000, 256,
     Family::Rmat,   false},
};

std::uint32_t
rmatScaleFor(NodeId nodes)
{
    std::uint32_t s = 0;
    while ((NodeId{1} << s) < nodes)
        ++s;
    return s;
}

} // namespace

const std::vector<DatasetProfile>&
table2Profiles()
{
    return kProfiles;
}

const DatasetProfile&
datasetByTag(const std::string& tag)
{
    for (const DatasetProfile& p : kProfiles)
        if (p.tag == tag)
            return p;
    fatal("unknown dataset tag: " + tag);
}

CooGraph
buildDataset(const DatasetProfile& profile, std::uint64_t seed,
             std::uint32_t boards)
{
    const EdgeId edges = profile.edges(boards);
    CooGraph g;
    switch (profile.family) {
      case Family::Web: {
        // Web graphs: strong clustering in label space and heavy skew.
        // powerLaw with high locality models crawl-order labeling.
        g = powerLaw(profile.nodes(), edges, /*alpha=*/0.72,
                     /*locality=*/0.8,
                     /*window=*/std::max<NodeId>(profile.nodes() / 64, 64),
                     seed);
        break;
      }
      case Family::Social: {
        g = powerLaw(profile.nodes(), edges, /*alpha=*/0.6,
                     /*locality=*/0.15,
                     /*window=*/std::max<NodeId>(profile.nodes() / 64, 64),
                     seed);
        break;
      }
      case Family::Rmat: {
        const std::uint32_t scale = rmatScaleFor(profile.nodes());
        g = rmat(scale, edges, RmatParams{}, seed);
        break;
      }
    }
    if (!profile.labels_preserve_communities) {
        // Model native labelings that scatter communities (Section V-C:
        // FR, MP, RV and the RMATs benefit from DBG because their
        // original labels do not preserve clusters).
        g = g.relabeled(randomPermutation(g.numNodes(), seed ^ 0xabcdef));
    }
    g.name = profile.tag;
    return g;
}

std::vector<std::string>
benchDatasetTags()
{
    if (const char* env = std::getenv("GMOMS_FULL_DATASETS");
        env && env[0] == '1') {
        std::vector<std::string> all;
        for (const DatasetProfile& p : kProfiles)
            all.push_back(p.tag);
        return all;
    }
    // Quick default: one of each family plus the sparse outlier WT.
    return {"WT", "UK", "MP", "24"};
}

} // namespace gmoms
