#include "src/graph/csr.hh"

#include "src/sim/log.hh"

namespace gmoms
{

CsrGraph::CsrGraph(const CooGraph& g)
    : num_nodes_(g.numNodes()), weighted_(g.weighted())
{
    row_offsets_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
    for (const Edge& e : g.edges())
        ++row_offsets_[e.src + 1];
    for (NodeId n = 0; n < num_nodes_; ++n)
        row_offsets_[n + 1] += row_offsets_[n];

    neighbors_.resize(g.numEdges());
    if (weighted_)
        weights_.resize(g.numEdges());
    std::vector<EdgeId> cursor(row_offsets_.begin(),
                               row_offsets_.end() - 1);
    for (const Edge& e : g.edges()) {
        const EdgeId slot = cursor[e.src]++;
        neighbors_[slot] = e.dst;
        if (weighted_)
            weights_[slot] = e.weight;
    }
}

CooGraph
CsrGraph::toCoo() const
{
    CooGraph g(num_nodes_, weighted_);
    g.edges().reserve(numEdges());
    for (NodeId n = 0; n < num_nodes_; ++n) {
        const auto nbrs = neighbors(n);
        const auto w = weights(n);
        for (std::size_t i = 0; i < nbrs.size(); ++i)
            g.addEdge(n, nbrs[i], weighted_ ? w[i] : 0);
    }
    return g;
}

} // namespace gmoms
