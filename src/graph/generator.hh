/**
 * @file
 * Synthetic graph generators used as stand-ins for the paper's datasets
 * (see DESIGN.md, substitution table) and for tests/examples.
 */

#ifndef GMOMS_GRAPH_GENERATOR_HH
#define GMOMS_GRAPH_GENERATOR_HH

#include <cstdint>

#include "src/graph/coo.hh"
#include "src/sim/rng.hh"

namespace gmoms
{

/** Parameters of the R-MAT recursive generator [Chakrabarti et al.]. */
struct RmatParams
{
    double a = 0.57;
    double b = 0.19;
    double c = 0.19;  //!< d = 1 - a - b - c
    double noise = 0.1;  //!< per-level probability perturbation
};

/**
 * Generate an R-MAT graph with 2^scale nodes and @p num_edges edges.
 *
 * R-MAT naturally produces a power-law degree distribution and label-space
 * clustering (high address bits correlate), which models the
 * community-preserving labeling of web graphs (Section IV-E).
 */
CooGraph rmat(std::uint32_t scale, EdgeId num_edges,
              const RmatParams& params, std::uint64_t seed);

/**
 * Power-law out-degree graph over @p num_nodes nodes: node degrees follow
 * a Zipf-like distribution with exponent @p alpha, destinations chosen
 * with locality @p locality in [0,1]: with that probability the
 * destination is near the source in label space (window of
 * @p window nodes), else uniform.
 */
CooGraph powerLaw(NodeId num_nodes, EdgeId num_edges, double alpha,
                  double locality, NodeId window, std::uint64_t seed);

/** Uniform (Erdos-Renyi style) random directed graph. */
CooGraph uniformRandom(NodeId num_nodes, EdgeId num_edges,
                       std::uint64_t seed);

/**
 * 4-connected 2-D grid of rows x cols nodes (both directions per
 * neighbor pair) — a road-network-like workload for the SSSP example.
 */
CooGraph grid2d(NodeId rows, NodeId cols);

/** Chain 0 -> 1 -> ... -> n-1; handy for SSSP/BFS unit tests. */
CooGraph chain(NodeId num_nodes);

/** Star: node 0 -> all others. Stress case for request merging. */
CooGraph star(NodeId num_nodes);

/** Assign uniform random integer weights in [0, 255] (Section V-A). */
void addRandomWeights(CooGraph& g, std::uint64_t seed);

/** Random permutation of node labels (destroys community structure). */
std::vector<NodeId> randomPermutation(NodeId num_nodes,
                                      std::uint64_t seed);

} // namespace gmoms

#endif // GMOMS_GRAPH_GENERATOR_HH
