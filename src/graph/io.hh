/**
 * @file
 * Graph file I/O: the accelerator accepts graphs in coordinate (COO)
 * format (Section III-C). Two on-disk representations:
 *  - text edge lists ("src dst [weight]" per line, '#'/'%' comments),
 *    compatible with SNAP / KONECT downloads;
 *  - a compact binary format for fast reloads.
 */

#ifndef GMOMS_GRAPH_IO_HH
#define GMOMS_GRAPH_IO_HH

#include <string>

#include "src/graph/coo.hh"

namespace gmoms
{

/**
 * Parse a text edge list. Node ids are used as-is; num_nodes becomes
 * max(id) + 1 unless @p num_nodes_hint is larger. A third column, when
 * present on every edge, is read as the weight.
 * @throws FatalError on malformed input or missing file.
 */
CooGraph loadEdgeList(const std::string& path, NodeId num_nodes_hint = 0);

/** Write "src dst [weight]" lines. */
void saveEdgeList(const CooGraph& g, const std::string& path);

/** Binary round-trip format (magic + counts + raw edge array). */
CooGraph loadBinary(const std::string& path);
void saveBinary(const CooGraph& g, const std::string& path);

} // namespace gmoms

#endif // GMOMS_GRAPH_IO_HH
