/**
 * @file
 * Structural statistics of a graph — used by Table II reporting and by
 * tests that check generator properties.
 */

#ifndef GMOMS_GRAPH_GRAPH_STATS_HH
#define GMOMS_GRAPH_GRAPH_STATS_HH

#include <cstdint>

#include "src/graph/coo.hh"

namespace gmoms
{

struct GraphStats
{
    NodeId num_nodes = 0;
    EdgeId num_edges = 0;
    double avg_out_degree = 0.0;
    std::uint32_t max_out_degree = 0;
    std::uint32_t max_in_degree = 0;
    /** Fraction of edges owned by the top 1% highest out-degree nodes —
     *  a skew measure; power-law graphs score far above uniform ones. */
    double top1pct_edge_share = 0.0;
    /** Fraction of edges whose |src - dst| < 4096 — a cheap label-space
     *  locality proxy; community-preserving labelings score high. */
    double local_edge_fraction = 0.0;
};

GraphStats computeGraphStats(const CooGraph& g);

} // namespace gmoms

#endif // GMOMS_GRAPH_GRAPH_STATS_HH
