#include "src/graph/layout.hh"

#include <algorithm>
#include <vector>

#include "src/sim/log.hh"

namespace gmoms
{

namespace
{

/**
 * Encode one shard in the packed half-word CSR: edges grouped by
 * destination (stable, so the per-destination source order matches
 * the plain encoding and synchronous float accumulation stays
 * bit-identical), destination groups opened by selectors, lines kept
 * self-contained (see packedcsr in layout.hh). Returns the half-word
 * stream padded to whole 64-byte lines; deterministic, so the layout
 * constructor (sizing) and build() (content) agree exactly.
 */
std::vector<std::uint16_t>
packShard(const PartitionedGraph& pg, std::uint32_t s, std::uint32_t d,
          bool weighted)
{
    const auto span = pg.shardEdges(s, d);
    std::vector<Edge> edges(span.begin(), span.end());
    std::stable_sort(edges.begin(), edges.end(),
                     [](const Edge& a, const Edge& b) {
                         return a.dst < b.dst;
                     });

    constexpr std::uint32_t hpl = packedcsr::kHalfwordsPerLine;
    const std::uint32_t src_units = weighted ? 2 : 1;
    const NodeId dst_base = pg.dstIntervalBase(d);
    const NodeId src_base = static_cast<NodeId>(s) * pg.ns();

    std::vector<std::uint16_t> out;
    out.reserve((edges.size() + hpl) * (src_units + 1));
    std::uint32_t open_dst = ~0u;
    for (const Edge& e : edges) {
        const std::uint32_t dst_off = e.dst - dst_base;
        const std::uint32_t src_off = e.src - src_base;
        const std::uint32_t pos = out.size() % hpl;
        // Lines are self-contained: re-open the destination group at
        // every line start.
        bool need_sel = pos == 0 || dst_off != open_dst;
        if (hpl - pos < (need_sel ? 1 : 0) + src_units) {
            while (out.size() % hpl != 0)
                out.push_back(packedcsr::kPad);
            need_sel = true;
        }
        if (need_sel) {
            out.push_back(packedcsr::selector(dst_off));
            open_dst = dst_off;
        }
        out.push_back(packedcsr::source(src_off));
        if (weighted)
            out.push_back(static_cast<std::uint16_t>(e.weight));
    }
    // Tail padding; an empty shard still gets one all-pad line so its
    // edge pointer never carries size zero.
    if (out.empty())
        out.push_back(packedcsr::kPad);
    while (out.size() % hpl != 0)
        out.push_back(packedcsr::kPad);
    return out;
}

/** Whether the packed encoding can represent @p pg (15-bit offsets,
 *  a reserved all-ones pad word, 16-bit weights). */
bool
packEligible(const PartitionedGraph& pg)
{
    if (pg.ns() > 32768 || pg.nd() > 32767)
        return false;
    if (pg.weighted()) {
        for (std::uint32_t d = 0; d < pg.qd(); ++d)
            for (std::uint32_t s = 0; s < pg.qs(); ++s)
                for (const Edge& e : pg.shardEdges(s, d))
                    if (e.weight > 0xffffu)
                        return false;
    }
    return true;
}

} // namespace

GraphLayout::GraphLayout(const PartitionedGraph& pg, const Options& opts)
    : has_const_(opts.has_const), synchronous_(opts.synchronous),
      weighted_(pg.weighted()), qs_(pg.qs()), qd_(pg.qd()),
      num_nodes_(pg.numNodes()), opts_(opts)
{
    if (!opts_.init_value)
        fatal("GraphLayout requires an init_value function");
    if (has_const_ && !opts_.const_value)
        fatal("GraphLayout: has_const set but no const_value function");

    const std::uint64_t node_bytes = 4ull * num_nodes_;
    Addr cursor = 0;
    v_in_base_ = cursor;
    cursor = alignUp(cursor + node_bytes, kInterleaveBytes);
    if (has_const_) {
        v_const_base_ = cursor;
        cursor = alignUp(cursor + node_bytes, kInterleaveBytes);
    }
    if (synchronous_) {
        v_out_base_ = cursor;
        cursor = alignUp(cursor + node_bytes, kInterleaveBytes);
    } else {
        v_out_base_ = v_in_base_;  // asynchronous: same array
    }

    edge_base_ = cursor;
    packed_ = opts_.packed && packEligible(pg);
    std::uint64_t edge_words = 0;
    if (packed_) {
        // Exact packed size: the encoder is deterministic, so build()
        // will reproduce these shard extents half-word for half-word.
        for (std::uint32_t d = 0; d < qd_; ++d)
            for (std::uint32_t s = 0; s < qs_; ++s)
                edge_words += packShard(pg, s, d, weighted_).size() / 2;
    } else {
        const std::uint32_t words_per_edge = weighted_ ? 2 : 1;
        // Each shard: its edges, one terminating edge, padded to 64 B.
        for (std::uint32_t d = 0; d < qd_; ++d) {
            for (std::uint32_t s = 0; s < qs_; ++s) {
                const std::uint64_t w =
                    (pg.shardSize(s, d) + 1) * words_per_edge;
                edge_words += ceilDiv(w, 16) * 16;  // 16 words = 64 B
            }
        }
    }
    cursor = alignUp(cursor + 4ull * edge_words, kInterleaveBytes);
    ptr_base_ = cursor;
    cursor += 8ull * qs_ * qd_;
    total_bytes_ = alignUp(cursor, kInterleaveBytes);
}

void
GraphLayout::build(const PartitionedGraph& pg, BackingStore& store)
{
    if (store.size() < total_bytes_)
        store.resize(total_bytes_);

    for (NodeId n = 0; n < num_nodes_; ++n) {
        store.write32(vInAddr(n), opts_.init_value(n));
        if (has_const_)
            store.write32(vConstAddr(n), opts_.const_value(n));
        if (synchronous_)
            store.write32(vOutAddr(n), opts_.init_value(n));
    }

    const std::uint32_t words_per_edge = weighted_ ? 2 : 1;
    std::uint64_t word = edge_base_ / 4;
    if (packed_) {
        for (std::uint32_t d = 0; d < qd_; ++d) {
            for (std::uint32_t s = 0; s < qs_; ++s) {
                const std::uint64_t start = word;
                const std::vector<std::uint16_t> hw =
                    packShard(pg, s, d, weighted_);
                for (std::size_t i = 0; i < hw.size(); i += 2)
                    store.write32(4 * word++,
                                  static_cast<std::uint32_t>(hw[i]) |
                                      (static_cast<std::uint32_t>(
                                           hw[i + 1])
                                       << 16));
                store.write64(ptrAddr(s, d),
                              edgeptr::pack(start, word - start, true));
            }
        }
        return;
    }
    for (std::uint32_t d = 0; d < qd_; ++d) {
        for (std::uint32_t s = 0; s < qs_; ++s) {
            const std::uint64_t start = word;
            for (const Edge& e : pg.shardEdges(s, d)) {
                const std::uint32_t src_off =
                    e.src - static_cast<NodeId>(s) * pg.ns();
                const std::uint32_t dst_off =
                    e.dst - pg.dstIntervalBase(d);
                store.write32(4 * word++,
                              edgeword::pack(src_off, dst_off));
                if (weighted_)
                    store.write32(4 * word++, e.weight);
            }
            // Terminating edge, then pad the remainder of the last line
            // with terminating words so out-of-order DMA never decodes
            // stale data.
            const std::uint64_t payload =
                (pg.shardSize(s, d) + 1) * words_per_edge;
            const std::uint64_t padded = ceilDiv(payload, 16) * 16;
            for (std::uint64_t i = payload - words_per_edge; i < padded;
                 ++i)
                store.write32(4 * (start + i), edgeword::kTerminating);
            word = start + padded;
            // All shards start active; the scheduler updates the flags
            // between iterations (Template 1, line 22).
            store.write64(ptrAddr(s, d),
                          edgeptr::pack(start, padded, true));
        }
    }
}

void
GraphLayout::swapInOut()
{
    if (!synchronous_)
        panic("swapInOut on an asynchronous layout");
    std::swap(v_in_base_, v_out_base_);
}

void
GraphLayout::setActive(BackingStore& store, std::uint32_t s,
                       std::uint32_t d, bool active) const
{
    std::uint64_t p = store.read64(ptrAddr(s, d));
    p = active ? (p | edgeptr::kActive) : (p & ~edgeptr::kActive);
    store.write64(ptrAddr(s, d), p);
}

bool
GraphLayout::isActive(const BackingStore& store, std::uint32_t s,
                      std::uint32_t d) const
{
    return edgeptr::isActive(store.read64(ptrAddr(s, d)));
}

} // namespace gmoms
