#include "src/graph/layout.hh"

#include "src/sim/log.hh"

namespace gmoms
{

GraphLayout::GraphLayout(const PartitionedGraph& pg, const Options& opts)
    : has_const_(opts.has_const), synchronous_(opts.synchronous),
      weighted_(pg.weighted()), qs_(pg.qs()), qd_(pg.qd()),
      num_nodes_(pg.numNodes()), opts_(opts)
{
    if (!opts_.init_value)
        fatal("GraphLayout requires an init_value function");
    if (has_const_ && !opts_.const_value)
        fatal("GraphLayout: has_const set but no const_value function");

    const std::uint64_t node_bytes = 4ull * num_nodes_;
    Addr cursor = 0;
    v_in_base_ = cursor;
    cursor = alignUp(cursor + node_bytes, kInterleaveBytes);
    if (has_const_) {
        v_const_base_ = cursor;
        cursor = alignUp(cursor + node_bytes, kInterleaveBytes);
    }
    if (synchronous_) {
        v_out_base_ = cursor;
        cursor = alignUp(cursor + node_bytes, kInterleaveBytes);
    } else {
        v_out_base_ = v_in_base_;  // asynchronous: same array
    }

    edge_base_ = cursor;
    const std::uint32_t words_per_edge = weighted_ ? 2 : 1;
    // Each shard: its edges, one terminating edge, padded to 64 B.
    std::uint64_t edge_words = 0;
    for (std::uint32_t d = 0; d < qd_; ++d) {
        for (std::uint32_t s = 0; s < qs_; ++s) {
            const std::uint64_t w =
                (pg.shardSize(s, d) + 1) * words_per_edge;
            edge_words += ceilDiv(w, 16) * 16;  // 16 words = 64 B
        }
    }
    cursor = alignUp(cursor + 4ull * edge_words, kInterleaveBytes);
    ptr_base_ = cursor;
    cursor += 8ull * qs_ * qd_;
    total_bytes_ = alignUp(cursor, kInterleaveBytes);
}

void
GraphLayout::build(const PartitionedGraph& pg, BackingStore& store)
{
    if (store.size() < total_bytes_)
        store.resize(total_bytes_);

    for (NodeId n = 0; n < num_nodes_; ++n) {
        store.write32(vInAddr(n), opts_.init_value(n));
        if (has_const_)
            store.write32(vConstAddr(n), opts_.const_value(n));
        if (synchronous_)
            store.write32(vOutAddr(n), opts_.init_value(n));
    }

    const std::uint32_t words_per_edge = weighted_ ? 2 : 1;
    std::uint64_t word = edge_base_ / 4;
    for (std::uint32_t d = 0; d < qd_; ++d) {
        for (std::uint32_t s = 0; s < qs_; ++s) {
            const std::uint64_t start = word;
            for (const Edge& e : pg.shardEdges(s, d)) {
                const std::uint32_t src_off =
                    e.src - static_cast<NodeId>(s) * pg.ns();
                const std::uint32_t dst_off =
                    e.dst - pg.dstIntervalBase(d);
                store.write32(4 * word++,
                              edgeword::pack(src_off, dst_off));
                if (weighted_)
                    store.write32(4 * word++, e.weight);
            }
            // Terminating edge, then pad the remainder of the last line
            // with terminating words so out-of-order DMA never decodes
            // stale data.
            const std::uint64_t payload =
                (pg.shardSize(s, d) + 1) * words_per_edge;
            const std::uint64_t padded = ceilDiv(payload, 16) * 16;
            for (std::uint64_t i = payload - words_per_edge; i < padded;
                 ++i)
                store.write32(4 * (start + i), edgeword::kTerminating);
            word = start + padded;
            // All shards start active; the scheduler updates the flags
            // between iterations (Template 1, line 22).
            store.write64(ptrAddr(s, d),
                          edgeptr::pack(start, padded, true));
        }
    }
}

void
GraphLayout::swapInOut()
{
    if (!synchronous_)
        panic("swapInOut on an asynchronous layout");
    std::swap(v_in_base_, v_out_base_);
}

void
GraphLayout::setActive(BackingStore& store, std::uint32_t s,
                       std::uint32_t d, bool active) const
{
    std::uint64_t p = store.read64(ptrAddr(s, d));
    p = active ? (p | edgeptr::kActive) : (p & ~edgeptr::kActive);
    store.write64(ptrAddr(s, d), p);
}

bool
GraphLayout::isActive(const BackingStore& store, std::uint32_t s,
                      std::uint32_t d) const
{
    return edgeptr::isActive(store.read64(ptrAddr(s, d)));
}

} // namespace gmoms
