/**
 * @file
 * Interval-based O(M) graph partitioning (Section III-A, Fig. 3).
 *
 * Nodes are split into Qd destination intervals of Nd nodes and Qs source
 * intervals of Ns nodes; edges are bucketed into Qs x Qd shards. Shards
 * are stored destination-major so that all shards of one job (destination
 * interval) are contiguous.
 */

#ifndef GMOMS_GRAPH_PARTITION_HH
#define GMOMS_GRAPH_PARTITION_HH

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/coo.hh"

namespace gmoms
{

/** Compressed-edge limits imposed by the 32-bit edge encoding (Fig. 4). */
inline constexpr std::uint32_t kMaxDstIntervalNodes = 1u << 15;
inline constexpr std::uint32_t kMaxSrcIntervalNodes = 1u << 16;

class PartitionedGraph
{
  public:
    /**
     * Bucket @p g into shards. O(M) counting sort by shard; the relative
     * order of edges within a shard is preserved.
     *
     * @param nd Destination interval size, <= 32768 (15-bit offsets).
     * @param ns Source interval size, <= 65536 (16-bit offsets).
     */
    PartitionedGraph(const CooGraph& g, std::uint32_t nd, std::uint32_t ns);

    NodeId numNodes() const { return num_nodes_; }
    EdgeId numEdges() const { return edges_.size(); }
    bool weighted() const { return weighted_; }

    std::uint32_t nd() const { return nd_; }
    std::uint32_t ns() const { return ns_; }
    std::uint32_t qd() const { return qd_; }
    std::uint32_t qs() const { return qs_; }

    /** Index of shard E_{s->d} in the flat shard arrays. */
    std::uint32_t
    shardIndex(std::uint32_t s, std::uint32_t d) const
    {
        return d * qs_ + s;
    }

    /** Edges of shard E_{s->d}; offsets are relative to the intervals. */
    std::span<const Edge>
    shardEdges(std::uint32_t s, std::uint32_t d) const
    {
        const std::uint32_t idx = shardIndex(s, d);
        return {edges_.data() + shard_offsets_[idx],
                edges_.data() + shard_offsets_[idx + 1]};
    }

    EdgeId
    shardSize(std::uint32_t s, std::uint32_t d) const
    {
        const std::uint32_t idx = shardIndex(s, d);
        return shard_offsets_[idx + 1] - shard_offsets_[idx];
    }

    /** Number of nodes in destination interval @p d (last may be short). */
    std::uint32_t dstIntervalNodes(std::uint32_t d) const;

    /** First node of destination interval @p d. */
    NodeId dstIntervalBase(std::uint32_t d) const
    {
        return static_cast<NodeId>(d) * nd_;
    }

    /** Destination interval that owns node @p n. */
    std::uint32_t dstIntervalOf(NodeId n) const { return n / nd_; }

    /** Source interval that owns node @p n. */
    std::uint32_t srcIntervalOf(NodeId n) const { return n / ns_; }

    /** Total in-edges per destination interval (job sizes). */
    std::vector<EdgeId> jobSizes() const;

  private:
    NodeId num_nodes_ = 0;
    bool weighted_ = false;
    std::uint32_t nd_ = 0, ns_ = 0, qd_ = 0, qs_ = 0;
    std::vector<EdgeId> shard_offsets_;  //!< size qd*qs + 1
    std::vector<Edge> edges_;            //!< bucketed by shard
};

} // namespace gmoms

#endif // GMOMS_GRAPH_PARTITION_HH
