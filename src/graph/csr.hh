/**
 * @file
 * Compressed sparse row (CSR) representation and conversion.
 *
 * The paper's preprocessing argument (Section III-C): interval
 * partitioning is O(M), whereas frameworks that require CSR (Galois,
 * Totem, Graphicionado) implicitly sort edges by source, an
 * O(M log M)-class step. This module provides CSR both as a substrate
 * for the CPU baselines and to measure that conversion-cost contrast
 * (`table3`-adjacent microbenchmarks and tests).
 */

#ifndef GMOMS_GRAPH_CSR_HH
#define GMOMS_GRAPH_CSR_HH

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/coo.hh"

namespace gmoms
{

class CsrGraph
{
  public:
    /** Build from COO via counting sort over sources: O(N + M). The
     *  more general sort-based pipelines are O(M log M); either way
     *  CSR costs strictly more than shard partitioning. */
    explicit CsrGraph(const CooGraph& g);

    NodeId numNodes() const { return num_nodes_; }
    EdgeId numEdges() const
    {
        return static_cast<EdgeId>(neighbors_.size());
    }
    bool weighted() const { return weighted_; }

    /** Out-neighbors of @p n. */
    std::span<const NodeId>
    neighbors(NodeId n) const
    {
        return {neighbors_.data() + row_offsets_[n],
                neighbors_.data() + row_offsets_[n + 1]};
    }

    /** Weights parallel to neighbors(n); empty span if unweighted. */
    std::span<const std::uint32_t>
    weights(NodeId n) const
    {
        if (!weighted_)
            return {};
        return {weights_.data() + row_offsets_[n],
                weights_.data() + row_offsets_[n + 1]};
    }

    std::uint32_t
    outDegree(NodeId n) const
    {
        return static_cast<std::uint32_t>(row_offsets_[n + 1] -
                                          row_offsets_[n]);
    }

    /** Back to COO (row-major edge order). */
    CooGraph toCoo() const;

  private:
    NodeId num_nodes_ = 0;
    bool weighted_ = false;
    std::vector<EdgeId> row_offsets_;  //!< size N + 1
    std::vector<NodeId> neighbors_;
    std::vector<std::uint32_t> weights_;
};

} // namespace gmoms

#endif // GMOMS_GRAPH_CSR_HH
