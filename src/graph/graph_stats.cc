#include "src/graph/graph_stats.hh"

#include <algorithm>
#include <cstdlib>

namespace gmoms
{

GraphStats
computeGraphStats(const CooGraph& g)
{
    GraphStats s;
    s.num_nodes = g.numNodes();
    s.num_edges = g.numEdges();
    if (s.num_nodes == 0)
        return s;
    s.avg_out_degree =
        static_cast<double>(s.num_edges) / s.num_nodes;

    std::vector<std::uint32_t> out = g.outDegrees();
    std::vector<std::uint32_t> in = g.inDegrees();
    s.max_out_degree = *std::max_element(out.begin(), out.end());
    s.max_in_degree = *std::max_element(in.begin(), in.end());

    std::vector<std::uint32_t> sorted = out;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    const std::size_t top = std::max<std::size_t>(sorted.size() / 100, 1);
    std::uint64_t top_edges = 0;
    for (std::size_t i = 0; i < top; ++i)
        top_edges += sorted[i];
    s.top1pct_edge_share =
        s.num_edges ? static_cast<double>(top_edges) / s.num_edges : 0.0;

    EdgeId local = 0;
    for (const Edge& e : g.edges()) {
        const std::int64_t d = static_cast<std::int64_t>(e.src) -
                               static_cast<std::int64_t>(e.dst);
        if (std::llabs(d) < 4096)
            ++local;
    }
    s.local_edge_fraction =
        s.num_edges ? static_cast<double>(local) / s.num_edges : 0.0;
    return s;
}

} // namespace gmoms
