#include "src/graph/reorder.hh"

#include <algorithm>
#include <array>
#include <numeric>

#include "src/sim/log.hh"
#include "src/sim/types.hh"

namespace gmoms
{

namespace
{

/** Nodes per 64-byte cache line at 32-bit node values. */
constexpr NodeId kNodesPerLine = kLineBytes / 4;

} // namespace

std::vector<NodeId>
hashNodeIntervals(NodeId num_nodes, std::uint32_t nd)
{
    const std::uint32_t qd =
        static_cast<std::uint32_t>(ceilDiv(num_nodes, nd));
    std::vector<NodeId> new_label(num_nodes);
    NodeId next = 0;
    // Emit nodes interval by interval: interval k receives the nodes
    // congruent to k modulo Qd, in increasing order.
    for (std::uint32_t k = 0; k < qd; ++k)
        for (NodeId i = k; i < num_nodes; i += qd)
            new_label[i] = next++;
    return new_label;
}

std::vector<NodeId>
hashCacheLines(NodeId num_nodes, std::uint32_t nd)
{
    const std::uint32_t qd =
        static_cast<std::uint32_t>(ceilDiv(num_nodes, nd));
    const NodeId num_lines =
        static_cast<NodeId>(ceilDiv(num_nodes, kNodesPerLine));
    std::vector<NodeId> new_label(num_nodes);
    NodeId next = 0;
    for (std::uint32_t k = 0; k < qd; ++k) {
        for (NodeId line = k; line < num_lines; line += qd) {
            const NodeId base = line * kNodesPerLine;
            const NodeId end =
                std::min<NodeId>(base + kNodesPerLine, num_nodes);
            for (NodeId i = base; i < end; ++i)
                new_label[i] = next++;
        }
    }
    return new_label;
}

std::vector<NodeId>
dbgReorder(const CooGraph& g)
{
    const NodeId n = g.numNodes();
    const std::vector<std::uint32_t> deg = g.outDegrees();
    const double avg =
        n == 0 ? 0.0 : static_cast<double>(g.numEdges()) / n;

    // 8 groups with power-of-two thresholds around the average degree,
    // following Faldu et al.: {>=32a, >=16a, >=8a, >=4a, >=2a, >=a,
    // >=a/2, rest}, highest-degree group first.
    auto group_of = [&](std::uint32_t d) -> std::uint32_t {
        double t = 32.0 * avg;
        for (std::uint32_t grp = 0; grp < 7; ++grp) {
            if (static_cast<double>(d) >= t)
                return grp;
            t /= 2.0;
        }
        return 7;
    };

    // Stable counting sort by group. O(N).
    std::array<NodeId, 8> counts{};
    for (NodeId i = 0; i < n; ++i)
        ++counts[group_of(deg[i])];
    std::array<NodeId, 8> base{};
    NodeId acc = 0;
    for (std::uint32_t grp = 0; grp < 8; ++grp) {
        base[grp] = acc;
        acc += counts[grp];
    }
    std::vector<NodeId> new_label(n);
    for (NodeId i = 0; i < n; ++i)
        new_label[i] = base[group_of(deg[i])]++;
    return new_label;
}

std::vector<NodeId>
composePermutations(const std::vector<NodeId>& first,
                    const std::vector<NodeId>& second)
{
    if (first.size() != second.size())
        fatal("composePermutations: size mismatch");
    std::vector<NodeId> out(first.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        out[i] = second[first[i]];
    return out;
}

bool
isPermutation(const std::vector<NodeId>& perm)
{
    std::vector<bool> seen(perm.size(), false);
    for (NodeId p : perm) {
        if (p >= perm.size() || seen[p])
            return false;
        seen[p] = true;
    }
    return true;
}

const char*
preprocessingName(Preprocessing p)
{
    switch (p) {
      case Preprocessing::None: return "none";
      case Preprocessing::Hash: return "hash";
      case Preprocessing::Dbg: return "dbg";
      case Preprocessing::DbgHash: return "dbg+hash";
      case Preprocessing::Packed: return "packed";
      case Preprocessing::DbgHashPacked: return "dbg+hash+packed";
    }
    return "?";
}

bool
packedCsr(Preprocessing p)
{
    return p == Preprocessing::Packed ||
           p == Preprocessing::DbgHashPacked;
}

Preprocessing
basePreprocessing(Preprocessing p)
{
    switch (p) {
      case Preprocessing::Packed: return Preprocessing::None;
      case Preprocessing::DbgHashPacked: return Preprocessing::DbgHash;
      default: return p;
    }
}

CooGraph
applyPreprocessing(const CooGraph& g, Preprocessing p, std::uint32_t nd)
{
    switch (p) {
      case Preprocessing::None:
        return g;
      case Preprocessing::Hash:
        return g.relabeled(hashCacheLines(g.numNodes(), nd));
      case Preprocessing::Dbg:
        return g.relabeled(dbgReorder(g));
      case Preprocessing::DbgHash: {
        const CooGraph d = g.relabeled(dbgReorder(g));
        return d.relabeled(hashCacheLines(d.numNodes(), nd));
      }
      case Preprocessing::Packed:
      case Preprocessing::DbgHashPacked:
        // Packing is a layout-time encoding, not a relabeling: strip
        // it and recurse on the base variant.
        return applyPreprocessing(g, basePreprocessing(p), nd);
    }
    return g;
}

} // namespace gmoms
