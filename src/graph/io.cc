#include "src/graph/io.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/sim/log.hh"

namespace gmoms
{

namespace
{

constexpr std::uint64_t kBinaryMagic = 0x534d4f4d47ull;  // "GMOMS"

} // namespace

CooGraph
loadEdgeList(const std::string& path, NodeId num_nodes_hint)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open edge list: " + path);
    std::vector<Edge> edges;
    NodeId max_node = 0;
    bool all_weighted = true;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream ss(line);
        std::uint64_t src, dst;
        if (!(ss >> src >> dst))
            fatal("malformed edge at " + path + ":" +
                  std::to_string(line_no));
        std::uint64_t weight;
        if (ss >> weight) {
            edges.push_back(Edge{static_cast<NodeId>(src),
                                 static_cast<NodeId>(dst),
                                 static_cast<std::uint32_t>(weight)});
        } else {
            all_weighted = false;
            edges.push_back(Edge{static_cast<NodeId>(src),
                                 static_cast<NodeId>(dst), 0});
        }
        max_node = std::max(max_node,
                            static_cast<NodeId>(std::max(src, dst)));
    }
    const NodeId n = std::max<NodeId>(
        edges.empty() ? num_nodes_hint : max_node + 1, num_nodes_hint);
    CooGraph g(n, all_weighted && !edges.empty());
    g.edges() = std::move(edges);
    return g;
}

void
saveEdgeList(const CooGraph& g, const std::string& path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write edge list: " + path);
    out << "# nodes " << g.numNodes() << " edges " << g.numEdges()
        << "\n";
    for (const Edge& e : g.edges()) {
        out << e.src << ' ' << e.dst;
        if (g.weighted())
            out << ' ' << e.weight;
        out << '\n';
    }
}

CooGraph
loadBinary(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open binary graph: " + path);
    std::uint64_t magic = 0, nodes = 0, edges = 0, weighted = 0;
    in.read(reinterpret_cast<char*>(&magic), 8);
    in.read(reinterpret_cast<char*>(&nodes), 8);
    in.read(reinterpret_cast<char*>(&edges), 8);
    in.read(reinterpret_cast<char*>(&weighted), 8);
    if (!in || magic != kBinaryMagic)
        fatal("not a gmoms binary graph: " + path);
    CooGraph g(static_cast<NodeId>(nodes), weighted != 0);
    g.edges().resize(edges);
    in.read(reinterpret_cast<char*>(g.edges().data()),
            static_cast<std::streamsize>(edges * sizeof(Edge)));
    if (!in)
        fatal("truncated binary graph: " + path);
    return g;
}

void
saveBinary(const CooGraph& g, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write binary graph: " + path);
    const std::uint64_t magic = kBinaryMagic;
    const std::uint64_t nodes = g.numNodes();
    const std::uint64_t edges = g.numEdges();
    const std::uint64_t weighted = g.weighted() ? 1 : 0;
    out.write(reinterpret_cast<const char*>(&magic), 8);
    out.write(reinterpret_cast<const char*>(&nodes), 8);
    out.write(reinterpret_cast<const char*>(&edges), 8);
    out.write(reinterpret_cast<const char*>(&weighted), 8);
    out.write(reinterpret_cast<const char*>(g.edges().data()),
              static_cast<std::streamsize>(edges * sizeof(Edge)));
}

} // namespace gmoms
