#include "src/graph/partition.hh"

#include "src/sim/log.hh"

namespace gmoms
{

PartitionedGraph::PartitionedGraph(const CooGraph& g, std::uint32_t nd,
                                   std::uint32_t ns)
    : num_nodes_(g.numNodes()), weighted_(g.weighted()), nd_(nd), ns_(ns)
{
    if (nd == 0 || nd > kMaxDstIntervalNodes)
        fatal("destination interval size must be in [1, 32768] to fit "
              "15-bit offsets");
    if (ns == 0 || ns > kMaxSrcIntervalNodes)
        fatal("source interval size must be in [1, 65536] to fit 16-bit "
              "offsets");
    if (num_nodes_ == 0)
        fatal("cannot partition an empty graph");

    qd_ = static_cast<std::uint32_t>(ceilDiv(num_nodes_, nd_));
    qs_ = static_cast<std::uint32_t>(ceilDiv(num_nodes_, ns_));

    const std::size_t num_shards =
        static_cast<std::size_t>(qd_) * qs_;

    // Counting sort by shard: count, prefix-sum, scatter. O(M + Qs*Qd).
    std::vector<EdgeId> counts(num_shards, 0);
    for (const Edge& e : g.edges())
        ++counts[shardIndex(srcIntervalOf(e.src), dstIntervalOf(e.dst))];

    shard_offsets_.assign(num_shards + 1, 0);
    for (std::size_t i = 0; i < num_shards; ++i)
        shard_offsets_[i + 1] = shard_offsets_[i] + counts[i];

    edges_.resize(g.numEdges());
    std::vector<EdgeId> cursor(shard_offsets_.begin(),
                               shard_offsets_.end() - 1);
    for (const Edge& e : g.edges()) {
        const std::uint32_t idx =
            shardIndex(srcIntervalOf(e.src), dstIntervalOf(e.dst));
        edges_[cursor[idx]++] = e;
    }
}

std::uint32_t
PartitionedGraph::dstIntervalNodes(std::uint32_t d) const
{
    const NodeId base = dstIntervalBase(d);
    return std::min<NodeId>(nd_, num_nodes_ - base);
}

std::vector<EdgeId>
PartitionedGraph::jobSizes() const
{
    std::vector<EdgeId> sizes(qd_, 0);
    for (std::uint32_t d = 0; d < qd_; ++d)
        for (std::uint32_t s = 0; s < qs_; ++s)
            sizes[d] += shardSize(s, d);
    return sizes;
}

} // namespace gmoms
