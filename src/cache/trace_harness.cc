#include "src/cache/trace_harness.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/sim/engine.hh"
#include "src/sim/log.hh"

namespace gmoms
{

namespace patterns
{

std::function<Addr(Rng&)>
uniform(std::uint64_t footprint_words)
{
    return [footprint_words](Rng& rng) {
        return rng.below(footprint_words);
    };
}

std::function<Addr(Rng&)>
zipf(std::uint64_t footprint_words, double alpha)
{
    // Build a rank -> weight CDF over a capped number of ranks; the
    // tail beyond the cap is uniform (standard trace-generation
    // shortcut that keeps setup O(ranks)).
    const std::size_t ranks = static_cast<std::size_t>(
        std::min<std::uint64_t>(footprint_words, 65536));
    auto cdf = std::make_shared<std::vector<double>>(ranks);
    double acc = 0;
    for (std::size_t r = 0; r < ranks; ++r) {
        acc += std::pow(static_cast<double>(r) + 1.0, -alpha);
        (*cdf)[r] = acc;
    }
    const double total = acc;
    // Scatter ranks across the footprint with a multiplicative hash so
    // hot words are not spatially adjacent.
    return [cdf, total, footprint_words](Rng& rng) {
        const double u = rng.uniform() * total;
        const auto it =
            std::lower_bound(cdf->begin(), cdf->end(), u);
        const std::uint64_t rank =
            static_cast<std::uint64_t>(it - cdf->begin());
        return (rank * 0x9e3779b97f4a7c15ull) % footprint_words;
    };
}

std::function<Addr(Rng&)>
strided(std::uint64_t footprint_words, std::uint64_t stride_words)
{
    auto cursor = std::make_shared<std::uint64_t>(0);
    return [cursor, footprint_words, stride_words](Rng&) {
        const std::uint64_t w = *cursor;
        *cursor = (*cursor + stride_words) % footprint_words;
        return w;
    };
}

} // namespace patterns

TraceResult
replayTrace(const MomsConfig& moms_cfg, const TraceConfig& cfg,
            const std::function<Addr(Rng&)>& pattern)
{
    Engine eng;
    MemorySystem mem(eng, cfg.dram, cfg.num_channels,
                     moms_cfg.memPortsNeeded(cfg.num_clients));
    const std::size_t bytes = static_cast<std::size_t>(
        alignUp(cfg.footprint_words * 4, kInterleaveBytes));
    mem.store().resize(bytes);
    for (Addr a = 0; a < bytes; a += 4)
        mem.store().write32(a, static_cast<std::uint32_t>(a / 4));

    MomsSystem moms(eng, mem, 0, cfg.num_clients, moms_cfg);

    std::vector<Rng> rngs;
    std::vector<std::uint32_t> sent(cfg.num_clients, 0);
    std::vector<std::uint32_t> done(cfg.num_clients, 0);
    for (std::uint32_t c = 0; c < cfg.num_clients; ++c)
        rngs.emplace_back(cfg.seed + c);

    // The predicate injects requests and drains responses, so it must
    // run every cycle (Poll::EveryCycle, the default): the engine may
    // still skip idle components — their queue wake hooks cover the
    // predicate's pushes — but must never fast-forward now_.
    const bool ok = eng.runUntil(
        [&] {
            bool all = true;
            for (std::uint32_t c = 0; c < cfg.num_clients; ++c) {
                SourcePort& port = moms.pePort(c);
                const std::uint32_t inflight = sent[c] - done[c];
                if (sent[c] < cfg.requests_per_client &&
                    inflight < cfg.client_window && port.canSend()) {
                    const Addr word = pattern(rngs[c]);
                    port.send(ReadReq{word * 4, word * 4, c});
                    ++sent[c];
                }
                while (auto resp = port.receive()) {
                    if (resp->addr != resp->tag)
                        panic("trace harness: response/tag mismatch");
                    ++done[c];
                }
                all &= done[c] == cfg.requests_per_client;
            }
            return all;
        },
        500'000'000);
    if (!ok)
        fatal("trace replay did not complete within the cycle budget");

    TraceResult r;
    r.cycles = eng.now();
    r.requests = moms.totalRequests();
    r.hits = moms.totalHits();
    r.secondary_misses = moms.totalSecondaryMisses();
    r.lines_from_mem = moms.totalLinesFromMem();
    r.dram_bytes = mem.totalBytesRead();
    return r;
}

} // namespace gmoms
