/**
 * @file
 * Set-associative tag array with LRU replacement.
 *
 * Only tags are modelled — data always comes from the functional backing
 * store — so this class answers "would this access hit?" and tracks
 * hit/miss statistics. ways == 1 gives the direct-mapped arrays the paper
 * uses in shared MOMS banks; size 0 disables the array entirely (the
 * cache-less MOMS of Figs. 12 and 15).
 */

#ifndef GMOMS_CACHE_CACHE_ARRAY_HH
#define GMOMS_CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "src/cache/cache_types.hh"
#include "src/sim/types.hh"

namespace gmoms
{

class CacheArray
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    /**
     * @param size_bytes Total capacity; 0 disables the array.
     * @param ways       Associativity (1 = direct-mapped).
     */
    CacheArray(std::uint64_t size_bytes, std::uint32_t ways);

    /** True when the array is absent (size 0). */
    bool disabled() const { return num_sets_ == 0; }

    std::uint64_t sizeBytes() const { return size_bytes_; }
    std::uint32_t ways() const { return ways_; }

    /**
     * Look up @p line (line-aligned address); updates LRU on hit and
     * statistics either way.
     */
    bool lookup(Addr line);

    /** Probe without updating LRU or statistics. */
    bool contains(Addr line) const;

    /** Install @p line, evicting the set's LRU way if needed. */
    void fill(Addr line);

    /** Drop every line (used at iteration boundaries: the node arrays
     *  swap or are rewritten, so cached values would be stale). */
    void invalidateAll();

    const Stats& stats() const { return stats_; }

  private:
    struct Way
    {
        Addr line = 0;
        bool valid = false;
        std::uint64_t lru = 0;  //!< last-touch stamp
    };

    std::uint32_t setOf(Addr line) const;

    std::uint64_t size_bytes_ = 0;
    std::uint32_t ways_ = 1;
    std::uint32_t num_sets_ = 0;
    std::uint64_t stamp_ = 0;
    std::vector<Way> ways_storage_;  //!< num_sets x ways
    Stats stats_;
};

} // namespace gmoms

#endif // GMOMS_CACHE_CACHE_ARRAY_HH
