#include "src/cache/moms_system.hh"

#include <algorithm>

#include "src/sim/log.hh"

namespace gmoms
{

// ---------------------------------------------------------------------
// MomsConfig factories and helpers
// ---------------------------------------------------------------------

std::string
MomsConfig::label(std::uint32_t num_pes) const
{
    const bool traditional = shared_bank.assoc_mshr ||
                             private_bank.assoc_mshr;
    const std::string kind = traditional ? "trad" : "moms";
    switch (topology) {
      case Topology::Shared:
        return std::to_string(num_pes) + "/" +
               std::to_string(num_shared_banks) + " shared-" + kind;
      case Topology::Private:
        return std::to_string(num_pes) + " private-" + kind + " " +
               std::to_string(private_bank.cache_bytes / 1024) + "k";
      case Topology::TwoLevel:
        return std::to_string(num_pes) + "/" +
               std::to_string(num_shared_banks) + " " + kind + " " +
               std::to_string(private_bank.cache_bytes / 1024) + "k";
    }
    return "?";
}

MomsConfig
MomsConfig::shared(std::uint32_t banks)
{
    MomsConfig cfg;
    cfg.topology = Topology::Shared;
    cfg.num_shared_banks = banks;
    cfg.shared_bank = MomsBankConfig{};  // 32 kB DM, 512 MSHR, 4096 sub
    return cfg;
}

MomsConfig
MomsConfig::privateOnly()
{
    MomsConfig cfg;
    cfg.topology = Topology::Private;
    cfg.private_bank = MomsBankConfig{};
    cfg.private_bank.cache_ways = 4;  // paper: 4-way when no shared level
    cfg.private_bank.num_subentries = 12288;  // paper 49,152 scaled
    return cfg;
}

MomsConfig
MomsConfig::twoLevel(std::uint32_t banks,
                     std::uint64_t private_cache_bytes)
{
    MomsConfig cfg;
    cfg.topology = Topology::TwoLevel;
    cfg.num_shared_banks = banks;
    cfg.shared_bank = MomsBankConfig{};
    cfg.private_bank = MomsBankConfig{};
    cfg.private_bank.cache_bytes = private_cache_bytes;
    cfg.private_bank.cache_ways = private_cache_bytes ? 4 : 1;
    cfg.private_bank.num_subentries = 12288;  // paper 49,152 scaled
    return cfg;
}

namespace
{

MomsBankConfig
traditionalBank(std::uint64_t cache_bytes, std::uint32_t ways)
{
    MomsBankConfig b;
    b.cache_bytes = cache_bytes;
    b.cache_ways = ways;
    b.assoc_mshr = true;
    b.num_mshrs = 16;
    b.max_subentries_per_miss = 8;
    b.num_subentries = 16 * 8;
    return b;
}

} // namespace

MomsConfig
MomsConfig::traditionalShared(std::uint32_t banks)
{
    MomsConfig cfg;
    cfg.topology = Topology::Shared;
    cfg.num_shared_banks = banks;
    cfg.shared_bank = traditionalBank(1024, 1);
    return cfg;
}

MomsConfig
MomsConfig::traditionalTwoLevel(std::uint32_t banks)
{
    MomsConfig cfg;
    cfg.topology = Topology::TwoLevel;
    cfg.num_shared_banks = banks;
    cfg.shared_bank = traditionalBank(1024, 1);
    cfg.private_bank = traditionalBank(1024, 4);
    return cfg;
}

MomsConfig
MomsConfig::withoutCacheArrays() const
{
    MomsConfig cfg = *this;
    cfg.shared_bank.cache_bytes = 0;
    cfg.private_bank.cache_bytes = 0;
    return cfg;
}

MomsConfig
MomsConfig::withPrivateCache(std::uint64_t bytes) const
{
    MomsConfig cfg = *this;
    cfg.private_bank.cache_bytes = bytes;
    cfg.private_bank.cache_ways = bytes ? 4 : 1;
    return cfg;
}

MomsConfig
MomsConfig::withSharedCache(std::uint64_t bytes) const
{
    MomsConfig cfg = *this;
    cfg.shared_bank.cache_bytes = bytes;
    return cfg;
}

// ---------------------------------------------------------------------
// Internal adapters
// ---------------------------------------------------------------------

/** Memory side of a bank that talks straight to DRAM. */
struct MomsSystem::DramAdapter : public LineDownstream
{
    explicit DramAdapter(MemPort port) : port(port) {}

    bool canSend(Addr line) const override { return port.canSend(line); }
    void
    send(Addr line) override
    {
        if (!port.send(MemReq{line, kLineBytes, line, false}))
            panic("DramAdapter::send after canSend");
    }
    std::optional<Addr>
    receive() override
    {
        if (auto resp = port.receive())
            return resp->addr;
        return std::nullopt;
    }
    Cycle lineReadyCycle() const override
    {
        return port.responseReadyCycle();
    }
    void bindUpstream(Component* bank) override
    {
        port.bindClient(bank);
    }

    MemPort port;
};

/** Memory side of an L1 bank that targets the shared level through the
 *  crossbar (client index = the PE / private-bank index). */
struct MomsSystem::SharedLevelAdapter : public LineDownstream
{
    SharedLevelAdapter(TimedQueue<ReadReq>& req, TimedQueue<ReadResp>& resp,
                       std::uint32_t client)
        : req(req), resp(resp), client(client) {}

    bool canSend(Addr) const override { return req.canPush(); }
    void
    send(Addr line) override
    {
        if (!req.push(ReadReq{line, line, client}))
            panic("SharedLevelAdapter::send after canSend");
    }
    std::optional<Addr>
    receive() override
    {
        if (resp.canPop())
            return lineOf(resp.pop().addr);
        return std::nullopt;
    }
    Cycle lineReadyCycle() const override
    {
        return resp.peekReadyCycle();
    }
    void bindUpstream(Component* bank) override
    {
        req.setProducer(bank);
        resp.setConsumer(bank);
    }

    TimedQueue<ReadReq>& req;
    TimedQueue<ReadResp>& resp;
    std::uint32_t client;
};

/** PE port wired straight into a private bank. */
struct MomsSystem::BankDirectPort : public SourcePort
{
    BankDirectPort(MomsBank& bank, std::uint32_t client)
        : bank(bank), client(client) {}

    bool canSend() const override { return bank.cpuReqIn().canPush(); }
    bool
    send(const ReadReq& req) override
    {
        ReadReq r = req;
        r.client = client;
        return bank.cpuReqIn().push(r);
    }
    std::optional<ReadResp>
    receive() override
    {
        if (bank.cpuRespOut().canPop())
            return bank.cpuRespOut().pop();
        return std::nullopt;
    }
    Cycle responseReadyCycle() const override
    {
        return bank.cpuRespOut().peekReadyCycle();
    }
    void bindClient(Component* pe) override
    {
        bank.cpuReqIn().setProducer(pe);
        bank.cpuRespOut().setConsumer(pe);
    }

    MomsBank& bank;
    std::uint32_t client;
};

/** PE port wired into the crossbar (shared-only topology). */
struct MomsSystem::CrossbarPort : public SourcePort
{
    CrossbarPort(TimedQueue<ReadReq>& req, TimedQueue<ReadResp>& resp,
                 std::uint32_t client)
        : req(req), resp(resp), client(client) {}

    bool canSend() const override { return req.canPush(); }
    bool
    send(const ReadReq& r) override
    {
        ReadReq rr = r;
        rr.client = client;
        return req.push(rr);
    }
    std::optional<ReadResp>
    receive() override
    {
        if (resp.canPop())
            return resp.pop();
        return std::nullopt;
    }
    Cycle responseReadyCycle() const override
    {
        return resp.peekReadyCycle();
    }
    void bindClient(Component* pe) override
    {
        req.setProducer(pe);
        resp.setConsumer(pe);
    }

    TimedQueue<ReadReq>& req;
    TimedQueue<ReadResp>& resp;
    std::uint32_t client;
};

// ---------------------------------------------------------------------
// MomsSystem
// ---------------------------------------------------------------------

MomsSystem::MomsSystem(Engine& engine, MemorySystem& mem,
                       std::uint32_t first_mem_port, std::uint32_t num_pes,
                       const MomsConfig& cfg,
                       const std::string& name_prefix,
                       int bank_tick_group)
    : Component(name_prefix + "moms"), engine_(engine), mem_(mem),
      cfg_(cfg),
      num_pes_(num_pes), num_channels_(mem.numChannels())
{
    const bool has_shared = cfg.topology != MomsConfig::Topology::Private;
    const bool has_private = cfg.topology != MomsConfig::Topology::Shared;

    if (has_shared) {
        if (cfg.num_shared_banks == 0 ||
            cfg.num_shared_banks % num_channels_ != 0)
            fatal("shared bank count must be a nonzero multiple of the "
                  "channel count (static bank-to-channel binding)");
        for (std::uint32_t b = 0; b < cfg.num_shared_banks; ++b) {
            shared_banks_.push_back(std::make_unique<MomsBank>(
                engine, name_prefix + "moms.shared" + std::to_string(b),
                cfg.shared_bank));
            if (cfg.dynaburst) {
                assemblers_.push_back(std::make_unique<BurstAssembler>(
                    engine,
                    name_prefix + "moms.dynaburst" + std::to_string(b),
                    cfg.dynaburst_cfg,
                    mem.port(first_mem_port + mem_ports_used_)));
                engine.add(assemblers_.back().get());
                shared_banks_.back()->connectDownstream(
                    assemblers_.back().get());
            } else {
                downstreams_.push_back(std::make_unique<DramAdapter>(
                    mem.port(first_mem_port + mem_ports_used_)));
                shared_banks_.back()->connectDownstream(
                    downstreams_.back().get());
            }
            ++mem_ports_used_;
            engine.add(shared_banks_.back().get());
            // Banks qualify for parallel ticking: a bank owns its MSHR
            // and cache state outright and every queue it touches has
            // its other endpoint outside the bank group (crossbar,
            // PE, or a DRAM channel port).
            engine.setTickGroup(shared_banks_.back().get(),
                                bank_tick_group);
            // The crossbar (this component) feeds the bank's request
            // queue and drains its response queue.
            shared_banks_.back()->cpuReqIn().setProducer(this);
            shared_banks_.back()->cpuRespOut().setConsumer(this);
        }
    }

    // Crossbar client queues: one pair per PE/private bank.
    if (has_shared) {
        const std::size_t cap = std::max<std::size_t>(
            cfg.crossbar_queue_depth, cfg.crossing_latency + 2);
        for (std::uint32_t c = 0; c < num_pes; ++c) {
            xbar_req_.push_back(std::make_unique<TimedQueue<ReadReq>>(
                engine, cap, cfg.crossing_latency));
            xbar_resp_.push_back(std::make_unique<TimedQueue<ReadResp>>(
                engine, cap, cfg.crossing_latency));
            xbar_req_.back()->setConsumer(this);
            xbar_resp_.back()->setProducer(this);
        }
    }

    if (has_private) {
        for (std::uint32_t p = 0; p < num_pes; ++p) {
            private_banks_.push_back(std::make_unique<MomsBank>(
                engine,
                name_prefix + "moms.private" + std::to_string(p),
                cfg.private_bank));
            LineDownstream* down = nullptr;
            if (cfg.topology == MomsConfig::Topology::Private) {
                if (cfg.dynaburst) {
                    assemblers_.push_back(
                        std::make_unique<BurstAssembler>(
                            engine,
                            name_prefix + "moms.dynaburst" +
                                std::to_string(p),
                            cfg.dynaburst_cfg,
                            mem.port(first_mem_port +
                                     mem_ports_used_)));
                    engine.add(assemblers_.back().get());
                    down = assemblers_.back().get();
                } else {
                    downstreams_.push_back(
                        std::make_unique<DramAdapter>(mem.port(
                            first_mem_port + mem_ports_used_)));
                    down = downstreams_.back().get();
                }
                ++mem_ports_used_;
            } else {
                downstreams_.push_back(
                    std::make_unique<SharedLevelAdapter>(
                        *xbar_req_[p], *xbar_resp_[p], p));
                down = downstreams_.back().get();
            }
            private_banks_.back()->connectDownstream(down);
            engine.add(private_banks_.back().get());
            // Same hazard argument as the shared banks: the private
            // bank's queue endpoints are its own PE and (via its
            // adapter) crossbar or DRAM port queues, never another
            // bank. Note dynaburst interleaves assemblers (serial)
            // between banks in registration order, which fragments the
            // due-list runs — parallel spans then simply do not form.
            engine.setTickGroup(private_banks_.back().get(),
                                bank_tick_group);
        }
    }

    for (std::uint32_t p = 0; p < num_pes; ++p) {
        if (has_private) {
            pe_ports_.push_back(std::make_unique<BankDirectPort>(
                *private_banks_[p], p));
        } else {
            pe_ports_.push_back(std::make_unique<CrossbarPort>(
                *xbar_req_[p], *xbar_resp_[p], p));
        }
    }

    engine.add(this);
}

MomsSystem::~MomsSystem() = default;

std::uint32_t
MomsSystem::bankOf(Addr line) const
{
    const std::uint32_t per_channel =
        static_cast<std::uint32_t>(shared_banks_.size()) / num_channels_;
    const std::uint32_t ch = mem_.channelOf(line);
    const std::uint64_t h = (line / kLineBytes) * 0x9e3779b97f4a7c15ull;
    const std::uint32_t sub =
        static_cast<std::uint32_t>((h >> 33) % per_channel);
    return ch * per_channel + sub;
}

Cycle
MomsSystem::nextActivity() const
{
    if (shared_banks_.empty())
        return kCycleNever;  // private-only: tick is a no-op
    // Cycle-valued over in-flight tokens (see LineDownstream): a token
    // already travelling through a crossbar queue or a bank response
    // port bounds the next arbitration cycle even if not poppable yet.
    Cycle next = kCycleNever;
    for (const auto& q : xbar_req_)
        next = std::min(next, q->peekReadyCycle());
    for (const auto& b : shared_banks_)
        next = std::min(next, b->cpuRespOut().peekReadyCycle());
    return next;
}

void
MomsSystem::catchUp(Cycle upto)
{
    if (shared_banks_.empty() || upto <= rr_accounted_until_)
        return;
    // Under full tick the arbitration pointers advance once per cycle
    // whether or not any token moves; reproduce the skipped increments
    // (uint32 wraparound matches repeated ++).
    const std::uint32_t gap =
        static_cast<std::uint32_t>(upto - rr_accounted_until_);
    xbar_req_rr_ += gap;
    xbar_resp_rr_ += gap;
    rr_accounted_until_ = upto;
}

void
MomsSystem::tick()
{
    if (shared_banks_.empty())
        return;  // private-only: banks talk to DRAM directly

    // Account arbitration-pointer drift over any skipped cycles; this
    // tick's own increments (below) cover the current cycle.
    catchUp(engine_.now());
    rr_accounted_until_ = engine_.now() + 1;

    const std::uint32_t clients =
        static_cast<std::uint32_t>(xbar_req_.size());
    const std::uint32_t banks =
        static_cast<std::uint32_t>(shared_banks_.size());

    // Request crossbar: each bank accepts at most one request per
    // cycle. Single O(clients) pass in rotating priority order: a
    // client whose head request targets an already-claimed bank loses
    // the conflict this cycle (that is the bank-conflict bottleneck of
    // Section II).
    // Claim markers are epoch stamps (claimed == stamp equals this
    // tick's epoch), so an arbitration pass costs no O(banks) clear on
    // the many cycles where nothing moves.
    bank_claimed_.resize(banks, 0);
    client_claimed_.resize(clients, 0);
    const std::uint64_t epoch = ++claim_epoch_;
    for (std::uint32_t i = 0; i < clients; ++i) {
        const std::uint32_t c = (xbar_req_rr_ + i) % clients;
        if (!xbar_req_[c]->canPop())
            continue;
        const std::uint32_t b =
            bankOf(lineOf(xbar_req_[c]->front().addr));
        if (bank_claimed_[b] == epoch) {
            ++xbar_stats_.req_conflicts;
            continue;
        }
        MomsBank& bank = *shared_banks_[b];
        if (!bank.cpuReqIn().canPush()) {
            ++xbar_stats_.req_bank_busy;
            continue;
        }
        if (faults_ && faults_->drop_next_request) {
            faults_->drop_next_request = false;
            xbar_req_[c]->pop();  // token vanishes: never reaches a bank
            bank_claimed_[b] = epoch;
            continue;
        }
        bank.cpuReqIn().push(xbar_req_[c]->pop());
        bank_claimed_[b] = epoch;
    }
    ++xbar_req_rr_;

    // Response crossbar: each client receives at most one response per
    // cycle; single O(banks) pass in rotating priority order.
    for (std::uint32_t i = 0; i < banks; ++i) {
        const std::uint32_t b = (xbar_resp_rr_ + i) % banks;
        MomsBank& bank = *shared_banks_[b];
        if (!bank.cpuRespOut().canPop())
            continue;
        const std::uint32_t c = bank.cpuRespOut().front().client;
        if (client_claimed_[c] == epoch) {
            ++xbar_stats_.resp_conflicts;
            continue;
        }
        if (faults_ && faults_->stuck_client ==
                           static_cast<std::int32_t>(c)) {
            ++xbar_stats_.resp_backpressure;  // credit never comes back
            continue;
        }
        if (!xbar_resp_[c]->canPush()) {
            ++xbar_stats_.resp_backpressure;
            continue;
        }
        xbar_resp_[c]->push(bank.cpuRespOut().pop());
        client_claimed_[c] = epoch;
    }
    ++xbar_resp_rr_;
}

void
MomsSystem::invalidateCaches()
{
    for (auto& b : shared_banks_)
        b->invalidateCache();
    for (auto& b : private_banks_)
        b->invalidateCache();
}

bool
MomsSystem::idle() const
{
    for (const auto& b : shared_banks_)
        if (!b->idle())
            return false;
    for (const auto& b : private_banks_)
        if (!b->idle())
            return false;
    for (const auto& q : xbar_req_)
        if (!q->empty())
            return false;
    for (const auto& q : xbar_resp_)
        if (!q->empty())
            return false;
    return true;
}

std::uint64_t
MomsSystem::totalRequests() const
{
    std::uint64_t total = 0;
    const auto& level1 = private_banks_.empty() ? shared_banks_
                                                : private_banks_;
    for (const auto& b : level1)
        total += b->stats().requests;
    return total;
}

std::uint64_t
MomsSystem::totalHits() const
{
    std::uint64_t total = 0;
    for (const auto& b : shared_banks_)
        total += b->stats().hits;
    for (const auto& b : private_banks_)
        total += b->stats().hits;
    return total;
}

std::uint64_t
MomsSystem::totalSecondaryMisses() const
{
    std::uint64_t total = 0;
    for (const auto& b : shared_banks_)
        total += b->stats().secondary_misses;
    for (const auto& b : private_banks_)
        total += b->stats().secondary_misses;
    return total;
}

std::uint64_t
MomsSystem::totalLinesFromMem() const
{
    std::uint64_t total = 0;
    const auto& last_level = shared_banks_.empty() ? private_banks_
                                                   : shared_banks_;
    for (const auto& b : last_level)
        total += b->stats().lines_from_mem;
    return total;
}

std::uint64_t
MomsSystem::xbarReqDepth() const
{
    std::uint64_t total = 0;
    for (const auto& q : xbar_req_)
        total += q->size();
    return total;
}

std::uint64_t
MomsSystem::xbarRespDepth() const
{
    std::uint64_t total = 0;
    for (const auto& q : xbar_resp_)
        total += q->size();
    return total;
}

std::string
MomsSystem::queueReport() const
{
    std::string out;
    auto queue = [&out](const std::string& name, std::uint64_t size,
                        std::uint64_t cap) {
        if (size == 0)
            return;
        out += "  " + name + ": " + std::to_string(size) + "/" +
               std::to_string(cap) + "\n";
    };
    for (std::size_t c = 0; c < xbar_req_.size(); ++c) {
        queue("moms.xbar.req" + std::to_string(c), xbar_req_[c]->size(),
              xbar_req_[c]->capacity());
        queue("moms.xbar.resp" + std::to_string(c), xbar_resp_[c]->size(),
              xbar_resp_[c]->capacity());
    }
    auto banks = [&](const std::vector<std::unique_ptr<MomsBank>>& bs) {
        for (const auto& b : bs) {
            queue(b->name() + ".req_in", b->cpuReqIn().size(),
                  b->cpuReqIn().capacity());
            queue(b->name() + ".resp_out", b->cpuRespOut().size(),
                  b->cpuRespOut().capacity());
            if (std::uint64_t occ = b->mshrs().occupancy())
                out += "  " + b->name() + ".mshrs: " +
                       std::to_string(occ) + "/" +
                       std::to_string(b->mshrs().capacity()) + "\n";
            if (std::uint64_t occ = b->subentries().occupancy())
                out += "  " + b->name() + ".subentries: " +
                       std::to_string(occ) + "/" +
                       std::to_string(b->subentries().capacity()) + "\n";
        }
    };
    banks(private_banks_);
    banks(shared_banks_);
    return out;
}

double
MomsSystem::hitRate() const
{
    const std::uint64_t reqs = totalRequests();
    return reqs == 0 ? 0.0
                     : static_cast<double>(totalHits()) / reqs;
}

void
MomsSystem::registerStats(StatRegistry& reg) const
{
    for (const auto& b : shared_banks_)
        b->registerStats(reg);
    for (const auto& b : private_banks_)
        b->registerStats(reg);
    if (!shared_banks_.empty()) {
        stat_eraser_ = reg.scopedPrefix("moms.xbar.");
        reg.addCounter("moms.xbar.req_conflicts",
                       &xbar_stats_.req_conflicts);
        reg.addCounter("moms.xbar.req_bank_busy",
                       &xbar_stats_.req_bank_busy);
        reg.addCounter("moms.xbar.resp_conflicts",
                       &xbar_stats_.resp_conflicts);
        reg.addCounter("moms.xbar.resp_backpressure",
                       &xbar_stats_.resp_backpressure);
    }
}

void
MomsSystem::registerTelemetry(Telemetry& tele)
{
    const bool two_level =
        cfg_.topology == MomsConfig::Topology::TwoLevel;
    for (auto& b : shared_banks_)
        b->registerTelemetry(tele,
                             two_level ? "moms.l2" : "moms.shared",
                             StallCause::DownstreamBackpressure);
    for (auto& b : private_banks_)
        b->registerTelemetry(tele,
                             two_level ? "moms.l1" : "moms.private",
                             two_level
                                 ? StallCause::CrossingCredit
                                 : StallCause::DownstreamBackpressure);
    if (!shared_banks_.empty()) {
        tele.addStall("moms.xbar", StallCause::BankConflict,
                      &xbar_stats_.req_conflicts);
        tele.addStall("moms.xbar", StallCause::BankConflict,
                      &xbar_stats_.resp_conflicts);
        tele.addStall("moms.xbar", StallCause::DownstreamBackpressure,
                      &xbar_stats_.req_bank_busy);
        tele.addStall("moms.xbar", StallCause::DownstreamBackpressure,
                      &xbar_stats_.resp_backpressure);
        for (std::size_t c = 0; c < xbar_req_.size(); ++c) {
            xbar_req_[c]->attachProbe(tele.makeQueueProbe(
                "moms.xbar.req" + std::to_string(c),
                xbar_req_[c]->capacity()));
            xbar_resp_[c]->attachProbe(tele.makeQueueProbe(
                "moms.xbar.resp" + std::to_string(c),
                xbar_resp_[c]->capacity()));
        }
    }
    for (auto& a : assemblers_)
        a->registerTelemetry(tele);
}

} // namespace gmoms
