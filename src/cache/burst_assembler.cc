#include "src/cache/burst_assembler.hh"

#include <bit>

#include "src/sim/log.hh"

namespace gmoms
{

BurstAssembler::BurstAssembler(const Engine& engine, std::string name,
                               const BurstAssemblerConfig& cfg,
                               MemPort port)
    : Component(std::move(name)), engine_(engine), cfg_(cfg),
      port_(port)
{
    if (cfg.window_lines == 0 || cfg.window_lines > 32 ||
        !isPow2(cfg.window_lines))
        fatal("BurstAssembler window must be a power of two <= 32 "
              "lines");
    if (static_cast<std::uint64_t>(cfg.window_lines) * kLineBytes >
        kInterleaveBytes)
        fatal("BurstAssembler window must not exceed the channel "
              "interleave unit");
    port_.bindClient(this);  // wake on burst responses / port space
}

Cycle
BurstAssembler::nextActivity() const
{
    const Cycle now = engine_.now();
    // An in-flight burst response bounds the next tick (the port hook
    // only covers pushes that land while we are asleep).
    Cycle next = port_.responseReadyCycle();
    for (const auto& [base, window] : open_) {
        const bool full = std::popcount(window.mask) >=
                          static_cast<int>(cfg_.window_lines);
        if (full || now - window.opened >= cfg_.wait_cycles)
            return 0;  // flushable now (one burst per cycle)
        next = std::min(next, window.opened + cfg_.wait_cycles);
    }
    return next;
}

bool
BurstAssembler::canSend(Addr line) const
{
    return open_.count(windowBase(line)) ||
           open_.size() < cfg_.max_open_windows;
}

void
BurstAssembler::send(Addr line)
{
    ++stats_.line_requests;
    const Addr base = windowBase(line);
    const std::uint32_t idx =
        static_cast<std::uint32_t>((line - base) / kLineBytes);
    auto [it, inserted] = open_.try_emplace(
        base, Window{0, engine_.now()});
    it->second.mask |= std::uint64_t{1} << idx;
    // Called from the bank's tick: re-evaluate our calendar entry (the
    // window may now be full, or a new expiry timer just started).
    requestSelfWake(engine_.now());
}

std::optional<Addr>
BurstAssembler::receive()
{
    if (ready_.empty())
        return std::nullopt;
    const Addr line = ready_.front();
    ready_.pop_front();
    return line;
}

bool
BurstAssembler::flush(Addr base, const Window& window)
{
    const int first = std::countr_zero(window.mask);
    const int last = 63 - std::countl_zero(window.mask);
    const Addr addr = base + static_cast<Addr>(first) * kLineBytes;
    const std::uint32_t bytes =
        static_cast<std::uint32_t>(last - first + 1) * kLineBytes;
    if (!port_.send(MemReq{addr, bytes, next_tag_, false}))
        return false;
    in_flight_.emplace(next_tag_, std::make_pair(base, window.mask));
    ++next_tag_;
    ++stats_.bursts;
    stats_.lines_fetched += static_cast<std::uint64_t>(last - first + 1);
    return true;
}

void
BurstAssembler::tick()
{
    // Complete bursts: fan every *requested* line out to the bank.
    bool delivered = false;
    while (auto resp = port_.receive()) {
        auto it = in_flight_.find(resp->tag);
        if (it == in_flight_.end())
            panic("burst response with unknown tag");
        const auto [base, mask] = it->second;
        for (std::uint32_t i = 0; i < 64; ++i)
            if (mask & (std::uint64_t{1} << i))
                ready_.push_back(base +
                                 static_cast<Addr>(i) * kLineBytes);
        in_flight_.erase(it);
        delivered = true;
    }
    // The bank ticks after us (it is registered later): same-cycle
    // wake so it can absorb the lines exactly as under full tick.
    if (delivered)
        Engine::wake(upstream_, engine_.now());

    // Flush full or expired windows (one burst per cycle).
    for (auto it = open_.begin(); it != open_.end(); ++it) {
        const bool full =
            std::popcount(it->second.mask) >=
            static_cast<int>(cfg_.window_lines);
        const bool expired =
            engine_.now() - it->second.opened >= cfg_.wait_cycles;
        if (!full && !expired)
            continue;
        if (flush(it->first, it->second)) {
            if (expired && !full)
                ++stats_.timeouts;
            open_.erase(it);
        }
        break;  // at most one burst issued per cycle
    }
}

} // namespace gmoms
