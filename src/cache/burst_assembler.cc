#include "src/cache/burst_assembler.hh"

#include <bit>

#include "src/sim/log.hh"

namespace gmoms
{

BurstAssembler::BurstAssembler(const Engine& engine, std::string name,
                               const BurstAssemblerConfig& cfg,
                               MemPort port)
    : Component(std::move(name)), engine_(engine), cfg_(cfg),
      port_(port), open_(cfg.max_open_windows)
{
    if (cfg.window_lines == 0 || cfg.window_lines > 32 ||
        !isPow2(cfg.window_lines))
        fatal("BurstAssembler window must be a power of two <= 32 "
              "lines");
    if (static_cast<std::uint64_t>(cfg.window_lines) * kLineBytes >
        port_.interleaveBytes())
        fatal("BurstAssembler window must not exceed the channel "
              "interleave unit (" +
              std::to_string(port_.interleaveBytes()) +
              " B for this substrate)");
    port_.bindClient(this);  // wake on burst responses / port space
}

Cycle
BurstAssembler::nextActivity() const
{
    const Cycle now = engine_.now();
    // An in-flight burst response bounds the next tick (the port hook
    // only covers pushes that land while we are asleep).
    Cycle next = port_.responseReadyCycle();
    bool flushable = false;
    open_.forEach([&](Addr, const Window& window) {
        const bool full = std::popcount(window.mask) >=
                          static_cast<int>(cfg_.window_lines);
        if (full || now - window.opened >= cfg_.wait_cycles)
            flushable = true;  // flushable now (one burst per cycle)
        else
            next = std::min(next, window.opened + cfg_.wait_cycles);
    });
    return flushable ? 0 : next;
}

bool
BurstAssembler::canSend(Addr line) const
{
    return open_.contains(windowBase(line)) ||
           open_.size() < cfg_.max_open_windows;
}

void
BurstAssembler::send(Addr line)
{
    ++stats_.line_requests;
    const Addr base = windowBase(line);
    const std::uint32_t idx =
        static_cast<std::uint32_t>((line - base) / kLineBytes);
    Window* window =
        open_.tryEmplace(base, Window{0, engine_.now()}).first;
    window->mask |= std::uint64_t{1} << idx;
    // Called from the bank's tick: re-evaluate our calendar entry (the
    // window may now be full, or a new expiry timer just started).
    requestSelfWake(engine_.now());
}

std::optional<Addr>
BurstAssembler::receive()
{
    if (ready_.empty())
        return std::nullopt;
    const Addr line = ready_.front();
    ready_.pop_front();
    return line;
}

bool
BurstAssembler::flush(Addr base, const Window& window)
{
    const int first = std::countr_zero(window.mask);
    const int last = 63 - std::countl_zero(window.mask);
    const Addr addr = base + static_cast<Addr>(first) * kLineBytes;
    const std::uint32_t bytes =
        static_cast<std::uint32_t>(last - first + 1) * kLineBytes;
    if (!port_.send(MemReq{addr, bytes, next_tag_, false}))
        return false;
    in_flight_.tryEmplace(next_tag_, std::make_pair(base, window.mask));
    ++next_tag_;
    ++stats_.bursts;
    stats_.lines_fetched += static_cast<std::uint64_t>(last - first + 1);
    return true;
}

void
BurstAssembler::tick()
{
    // Complete bursts: fan every *requested* line out to the bank.
    bool delivered = false;
    while (auto resp = port_.receive()) {
        const auto* entry = in_flight_.find(resp->tag);
        if (entry == nullptr)
            panic("burst response with unknown tag");
        const auto [base, mask] = *entry;
        for (std::uint32_t i = 0; i < 64; ++i)
            if (mask & (std::uint64_t{1} << i))
                ready_.push_back(base +
                                 static_cast<Addr>(i) * kLineBytes);
        in_flight_.erase(resp->tag);
        delivered = true;
    }
    // The bank ticks after us (it is registered later): same-cycle
    // wake so it can absorb the lines exactly as under full tick.
    if (delivered)
        Engine::wake(upstream_, engine_.now());

    // Flush one full or expired window per cycle. Selection is
    // oldest-first (tie: lowest base), which is deterministic across
    // standard libraries — unordered_map iteration order was not.
    const Window* best = nullptr;
    Addr best_base = 0;
    open_.forEach([&](Addr base, const Window& window) {
        const bool full = std::popcount(window.mask) >=
                          static_cast<int>(cfg_.window_lines);
        const bool expired =
            engine_.now() - window.opened >= cfg_.wait_cycles;
        if (!full && !expired)
            return;
        if (best == nullptr || window.opened < best->opened ||
            (window.opened == best->opened && base < best_base)) {
            best = &window;
            best_base = base;
        }
    });
    if (best != nullptr && flush(best_base, *best)) {
        const bool full = std::popcount(best->mask) >=
                          static_cast<int>(cfg_.window_lines);
        if (!full)
            ++stats_.timeouts;
        open_.erase(best_base);
    }
}

} // namespace gmoms
