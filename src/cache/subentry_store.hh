/**
 * @file
 * Subentry buffer: per-miss bookkeeping shared by all MSHRs of a bank.
 *
 * Each pending read (primary or secondary miss) occupies one subentry
 * carrying the client's tag and the word offset within the line. MSHR
 * entries chain their subentries through a free-list-managed pool —
 * the RAM-resident equivalent of the paper's URAM subentry buffers
 * (32,768 slots per shared bank, 49,152 per private bank).
 */

#ifndef GMOMS_CACHE_SUBENTRY_STORE_HH
#define GMOMS_CACHE_SUBENTRY_STORE_HH

#include <cstdint>
#include <vector>

#include "src/cache/mshr.hh"
#include "src/sim/types.hh"

namespace gmoms
{

class SubentryStore
{
  public:
    struct Subentry
    {
        std::uint64_t tag = 0;
        std::uint32_t client = 0;
        std::uint16_t line_offset = 0;  //!< byte offset within the line
        std::uint32_t next = kNoSubentry;
    };

    struct Stats
    {
        std::uint64_t allocations = 0;
        std::uint64_t alloc_failures = 0;  //!< pool exhausted -> stall
        std::uint64_t peak_occupancy = 0;
    };

    explicit SubentryStore(std::uint32_t capacity);

    /**
     * Append a subentry to @p entry's list.
     * @return false when the pool is exhausted (the bank stalls).
     */
    bool append(MshrEntry& entry, std::uint64_t tag, std::uint32_t client,
                std::uint16_t line_offset);

    /**
     * Detach @p entry's list head for draining. Returns kNoSubentry when
     * the list is empty.
     */
    std::uint32_t head(const MshrEntry& entry) const
    {
        return entry.subentry_head;
    }

    const Subentry& at(std::uint32_t index) const
    {
        return pool_[index];
    }

    /** Free one subentry, returning the index of the next in the chain. */
    std::uint32_t free(std::uint32_t index);

    std::uint32_t capacity() const
    {
        return static_cast<std::uint32_t>(pool_.size());
    }
    std::uint32_t occupancy() const { return occupancy_; }
    bool full() const { return free_head_ == kNoSubentry; }

    const Stats& stats() const { return stats_; }

  private:
    std::vector<Subentry> pool_;
    std::uint32_t free_head_ = kNoSubentry;
    std::uint32_t occupancy_ = 0;
    Stats stats_;
};

} // namespace gmoms

#endif // GMOMS_CACHE_SUBENTRY_STORE_HH
