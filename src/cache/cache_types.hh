/**
 * @file
 * Request/response tokens of the source-node read path (PE -> MOMS).
 */

#ifndef GMOMS_CACHE_CACHE_TYPES_HH
#define GMOMS_CACHE_CACHE_TYPES_HH

#include <cstdint>

#include "src/sim/types.hh"

namespace gmoms
{

/**
 * A short irregular read: one 32-bit word at @p addr.
 *
 * @c tag is chosen by the client and echoed back; the PE uses it to
 * retrieve the suspended thread state (Fig. 10 of the paper). @c client
 * is filled by the interconnect for response routing.
 */
struct ReadReq
{
    Addr addr = 0;
    std::uint64_t tag = 0;
    std::uint32_t client = 0;
};

/** Completion of a ReadReq; @c addr is the original word address. */
struct ReadResp
{
    Addr addr = 0;
    std::uint64_t tag = 0;
    std::uint32_t client = 0;
};

/** Line-aligned base of the cache line containing @p addr. */
constexpr Addr
lineOf(Addr addr)
{
    return addr & ~static_cast<Addr>(kLineBytes - 1);
}

/** Byte offset of @p addr within its cache line. */
constexpr std::uint32_t
lineOffset(Addr addr)
{
    return static_cast<std::uint32_t>(addr & (kLineBytes - 1));
}

} // namespace gmoms

#endif // GMOMS_CACHE_CACHE_TYPES_HH
