/**
 * @file
 * Miss status holding register files.
 *
 * Two implementations behind one interface:
 *  - CuckooMshr: the paper's RAM-resident, cuckoo-hashed file that scales
 *    to thousands of entries (Section II, [Asiatici & Ienne FPGA'19]);
 *  - AssocMshr: the small fully-associative file of traditional
 *    non-blocking caches (16 entries in the paper's baselines).
 *
 * An entry maps a line address to the head/tail of its subentry list
 * (kept in a SubentryStore) plus a per-line subentry count used to
 * enforce the traditional caches' 8-subentries-per-MSHR limit.
 */

#ifndef GMOMS_CACHE_MSHR_HH
#define GMOMS_CACHE_MSHR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "src/sim/types.hh"

namespace gmoms
{

/** Sentinel index for "no subentry". */
inline constexpr std::uint32_t kNoSubentry = 0xffffffffu;

struct MshrEntry
{
    Addr line = 0;
    std::uint32_t subentry_head = kNoSubentry;
    std::uint32_t subentry_tail = kNoSubentry;
    std::uint32_t subentry_count = 0;
    bool valid = false;
};

/** Abstract MSHR file keyed by line address. */
class MshrFile
{
  public:
    struct Stats
    {
        std::uint64_t inserts = 0;
        std::uint64_t insert_failures = 0;  //!< full / cuckoo give-up
        std::uint64_t cuckoo_kicks = 0;
        std::uint64_t peak_occupancy = 0;
    };

    virtual ~MshrFile() = default;

    /** Entry for @p line, or nullptr when absent. Pointer is valid until
     *  the next insert/erase. */
    virtual MshrEntry* find(Addr line) = 0;

    /**
     * Allocate an entry for @p line (must not be present).
     * @return the new entry, or nullptr when the file cannot take it
     *         (capacity or cuckoo insertion failure) — the caller stalls.
     */
    virtual MshrEntry* insert(Addr line) = 0;

    /** Remove the entry for @p line (must be present). */
    virtual void erase(Addr line) = 0;

    virtual std::uint32_t capacity() const = 0;
    std::uint32_t occupancy() const { return occupancy_; }
    const Stats& stats() const { return stats_; }

  protected:
    void
    noteInsert()
    {
        ++stats_.inserts;
        ++occupancy_;
        stats_.peak_occupancy =
            std::max<std::uint64_t>(stats_.peak_occupancy, occupancy_);
    }

    std::uint32_t occupancy_ = 0;
    Stats stats_;
};

/**
 * Cuckoo-hashed MSHR file: @p tables ways, each with capacity/tables
 * slots; insertion displaces residents for up to @p max_kicks hops
 * before giving up (the FPGA design stalls and retries in that case,
 * which is exactly what returning nullptr triggers in the bank).
 */
class CuckooMshr : public MshrFile
{
  public:
    CuckooMshr(std::uint32_t capacity, std::uint32_t tables = 4,
               std::uint32_t max_kicks = 8);

    MshrEntry* find(Addr line) override;
    MshrEntry* insert(Addr line) override;
    void erase(Addr line) override;
    std::uint32_t capacity() const override
    {
        return static_cast<std::uint32_t>(tables_ * slots_per_table_);
    }

  private:
    std::uint32_t slotOf(Addr line, std::uint32_t table) const;
    MshrEntry& at(std::uint32_t table, std::uint32_t slot)
    {
        return entries_[static_cast<std::size_t>(table) *
                        slots_per_table_ + slot];
    }

    std::uint32_t tables_;
    std::uint32_t slots_per_table_;
    std::uint32_t max_kicks_;
    std::vector<MshrEntry> entries_;
};

/** Small fully-associative MSHR file (traditional cache baseline). */
class AssocMshr : public MshrFile
{
  public:
    explicit AssocMshr(std::uint32_t capacity);

    MshrEntry* find(Addr line) override;
    MshrEntry* insert(Addr line) override;
    void erase(Addr line) override;
    std::uint32_t capacity() const override
    {
        return static_cast<std::uint32_t>(entries_.size());
    }

  private:
    std::vector<MshrEntry> entries_;
};

} // namespace gmoms

#endif // GMOMS_CACHE_MSHR_HH
