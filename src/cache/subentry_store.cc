#include "src/cache/subentry_store.hh"

#include "src/sim/log.hh"

namespace gmoms
{

SubentryStore::SubentryStore(std::uint32_t capacity)
{
    if (capacity == 0)
        fatal("SubentryStore capacity must be >= 1");
    pool_.resize(capacity);
    // Thread the free list through the pool.
    for (std::uint32_t i = 0; i + 1 < capacity; ++i)
        pool_[i].next = i + 1;
    pool_[capacity - 1].next = kNoSubentry;
    free_head_ = 0;
}

bool
SubentryStore::append(MshrEntry& entry, std::uint64_t tag,
                      std::uint32_t client, std::uint16_t line_offset)
{
    if (free_head_ == kNoSubentry) {
        ++stats_.alloc_failures;
        return false;
    }
    const std::uint32_t idx = free_head_;
    free_head_ = pool_[idx].next;
    pool_[idx] = Subentry{tag, client, line_offset, kNoSubentry};
    if (entry.subentry_head == kNoSubentry) {
        entry.subentry_head = idx;
    } else {
        pool_[entry.subentry_tail].next = idx;
    }
    entry.subentry_tail = idx;
    ++entry.subentry_count;
    ++occupancy_;
    ++stats_.allocations;
    stats_.peak_occupancy =
        std::max<std::uint64_t>(stats_.peak_occupancy, occupancy_);
    return true;
}

std::uint32_t
SubentryStore::free(std::uint32_t index)
{
    if (index >= pool_.size())
        panic("SubentryStore::free: bad index");
    const std::uint32_t next = pool_[index].next;
    pool_[index].next = free_head_;
    free_head_ = index;
    --occupancy_;
    return next;
}

} // namespace gmoms
