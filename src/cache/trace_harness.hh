/**
 * @file
 * Trace-driven MOMS characterization harness.
 *
 * The MOMS idea predates the graph accelerator: the authors' FPGA'19
 * paper evaluated it by replaying irregular address traces. This
 * harness reproduces that methodology: drive any MomsConfig with a
 * synthetic access pattern (uniform, Zipf-skewed, strided, or a
 * user-supplied sequence) and report throughput, merge rate, hit rate
 * and DRAM traffic — without building a whole accelerator. Used by the
 * `trace_moms` bench and by memory-system studies.
 */

#ifndef GMOMS_CACHE_TRACE_HARNESS_HH
#define GMOMS_CACHE_TRACE_HARNESS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/cache/moms_system.hh"
#include "src/mem/dram_config.hh"
#include "src/sim/rng.hh"
#include "src/sim/types.hh"

namespace gmoms
{

/** Synthetic access-pattern generators over a footprint of N words. */
namespace patterns
{

/** Uniform random words. */
std::function<Addr(Rng&)> uniform(std::uint64_t footprint_words);

/**
 * Zipf-like skew: rank r is accessed with weight (r+1)^-alpha, the
 * head of the distribution scattered across the footprint (hot words
 * are not adjacent, as graph hubs are not).
 */
std::function<Addr(Rng&)> zipf(std::uint64_t footprint_words,
                               double alpha);

/** Fixed-stride sweep (degenerate locality; row-buffer friendly). */
std::function<Addr(Rng&)> strided(std::uint64_t footprint_words,
                                  std::uint64_t stride_words);

} // namespace patterns

struct TraceConfig
{
    std::uint32_t num_clients = 8;      //!< concurrent requesters
    std::uint32_t num_channels = 2;
    std::uint32_t requests_per_client = 10'000;
    /** Outstanding requests each client may keep in flight. */
    std::uint32_t client_window = 512;
    /** Address footprint in 32-bit words; patterns must stay inside. */
    std::uint64_t footprint_words = 1 << 20;
    DramConfig dram;
    std::uint64_t seed = 1;
};

struct TraceResult
{
    Cycle cycles = 0;
    std::uint64_t requests = 0;
    std::uint64_t hits = 0;
    std::uint64_t secondary_misses = 0;
    std::uint64_t lines_from_mem = 0;
    std::uint64_t dram_bytes = 0;

    double requestsPerCycle() const
    {
        return cycles ? static_cast<double>(requests) / cycles : 0.0;
    }
    double mergeRate() const
    {
        return requests ? static_cast<double>(secondary_misses) /
                              requests
                        : 0.0;
    }
    double hitRate() const
    {
        return requests ? static_cast<double>(hits) / requests : 0.0;
    }
};

/**
 * Replay @p pattern through @p moms_cfg and collect statistics. The
 * pattern callback returns a *word index*; the harness converts to a
 * byte address. Every response is checked against the backing store.
 */
TraceResult replayTrace(const MomsConfig& moms_cfg,
                        const TraceConfig& cfg,
                        const std::function<Addr(Rng&)>& pattern);

} // namespace gmoms

#endif // GMOMS_CACHE_TRACE_HARNESS_HH
