/**
 * @file
 * One bank of a miss-optimized memory system (MOMS).
 *
 * A bank is a non-blocking read cache: an optional tag array, an MSHR
 * file (cuckoo-hashed for MOMS, fully associative for the traditional
 * baseline), and a subentry buffer.
 *
 * Timing model per cycle, following the paper's bank pipeline and its
 * documented contention points (Section V-E):
 *  - ONE input operation: a returning line from memory (priority) or
 *    one request — requests and responses compete for the pipeline;
 *  - the drain engine independently emits ONE pending subentry response
 *    per cycle;
 *  - a cache hit needs the response output port, so it stalls when the
 *    drain engine used it this cycle — the paper's "point of contention
 *    between hit and miss data from cache and subentry buffer
 *    respectively, just before the MOMS response output".
 */

#ifndef GMOMS_CACHE_MOMS_BANK_HH
#define GMOMS_CACHE_MOMS_BANK_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "src/cache/cache_array.hh"
#include "src/cache/cache_types.hh"
#include "src/cache/mshr.hh"
#include "src/cache/subentry_store.hh"
#include "src/obs/telemetry.hh"
#include "src/sim/engine.hh"
#include "src/sim/ring_deque.hh"
#include "src/sim/stats.hh"
#include "src/sim/timed_queue.hh"

namespace gmoms
{

/** Downstream line-granular read interface of a bank. */
class LineDownstream
{
  public:
    virtual ~LineDownstream() = default;
    /** True when a line request would be accepted this cycle. */
    virtual bool canSend(Addr line) const = 0;
    /** Issue a line read; call only when canSend() returned true. */
    virtual void send(Addr line) = 0;
    /** Poll for a completed line. */
    virtual std::optional<Addr> receive() = 0;
    /**
     * Earliest cycle receive() may yield a line. Used by the bank's
     * quiescence check; implementations must report *in-flight* lines
     * (a token already pushed toward the bank but not yet poppable),
     * not just currently-deliverable ones — wake hooks only cover
     * pushes that happen while the bank is asleep, so an arrival the
     * bank learned of and then lost by ticking in between must be
     * re-reported here. The conservative default (always "now") keeps
     * hook-less implementations (test fakes) polled every cycle, which
     * is exactly the legacy behavior.
     */
    virtual Cycle lineReadyCycle() const { return 0; }
    /** Learn the owning bank, for wake-ups on line delivery. Overridden
     *  only by implementations that also override lineReadyCycle(). */
    virtual void bindUpstream(Component* bank) { (void)bank; }
};

/**
 * Default sizes follow the scaling rule of DESIGN.md section 5: cache
 * capacities shrink by the dataset scale (256 kB/bank -> 1 kB/bank) so
 * per-dataset cache coverage matches the paper, while MSHR/subentry
 * counts stay MLP-sized (they cover in-flight misses, which depend on
 * the bandwidth-delay product, not on the node-set size).
 */
struct MomsBankConfig
{
    std::uint64_t cache_bytes = 1024;  //!< 0 disables the array
    std::uint32_t cache_ways = 1;
    std::uint32_t num_mshrs = 1024;
    std::uint32_t mshr_tables = 4;     //!< cuckoo ways
    std::uint32_t max_kicks = 8;
    bool assoc_mshr = false;           //!< traditional fully-assoc file
    std::uint32_t num_subentries = 8192;
    /** Per-miss subentry cap; 0 = unlimited (MOMS), 8 = traditional. */
    std::uint32_t max_subentries_per_miss = 0;
    std::uint32_t req_queue_depth = 16;
    std::uint32_t resp_queue_depth = 16;
    Cycle req_latency = 1;   //!< input register stages
    Cycle resp_latency = 2;  //!< lookup + output register stages
};

class MomsBank : public Component
{
  public:
    struct Stats
    {
        std::uint64_t requests = 0;
        std::uint64_t hits = 0;
        std::uint64_t primary_misses = 0;
        std::uint64_t secondary_misses = 0;
        std::uint64_t responses = 0;
        std::uint64_t lines_from_mem = 0;
        std::uint64_t stall_mshr = 0;        //!< cuckoo/capacity stalls
        std::uint64_t stall_subentry = 0;    //!< pool or per-miss cap
        std::uint64_t stall_downstream = 0;  //!< mem request port full
        std::uint64_t stall_resp_out = 0;    //!< response queue full
        std::uint64_t drain_busy = 0;        //!< cycles spent draining
    };

    MomsBank(const Engine& engine, std::string name,
             const MomsBankConfig& cfg);

    /** Attach the memory side; must be called before the first tick. */
    void
    connectDownstream(LineDownstream* down)
    {
        down_ = down;
        down->bindUpstream(this);
    }

    TimedQueue<ReadReq>& cpuReqIn() { return cpu_req_in_; }
    TimedQueue<ReadResp>& cpuRespOut() { return cpu_resp_out_; }
    const TimedQueue<ReadReq>& cpuReqIn() const { return cpu_req_in_; }
    const TimedQueue<ReadResp>& cpuRespOut() const
    {
        return cpu_resp_out_;
    }

    void tick() override;

    /**
     * Quiescence: the bank must stay active whenever any per-cycle
     * work or stall accounting could occur — draining, a retried
     * request, a poppable input, or outstanding misses with a
     * downstream that may deliver a line. Otherwise it sleeps until a
     * queue hook or the downstream's bindUpstream() wake fires.
     */
    Cycle nextActivity() const override;

    /** Drop all cached lines (iteration boundary). */
    void invalidateCache() { cache_.invalidateAll(); }

    /** True when no request is buffered, pending or draining. */
    bool idle() const;

    const Stats& stats() const { return stats_; }
    const CacheArray& cache() const { return cache_; }
    const MshrFile& mshrs() const { return *mshrs_; }
    const SubentryStore& subentries() const { return subentries_; }
    const MomsBankConfig& config() const { return cfg_; }

    /** Mutable MSHR file, for the hardening-layer regression tests
     *  (leak injection: insert() an entry nobody will ever free). */
    MshrFile& mshrsForTest() { return *mshrs_; }

    void registerStats(StatRegistry& reg) const;

    /**
     * Attach this bank's stall channels, series and queue probes to
     * @p tele under stall group @p group. The semantic meaning of a
     * full downstream differs per topology (DRAM port vs die-crossing
     * queue), so the owner supplies @p downstream_cause.
     */
    void registerTelemetry(Telemetry& tele, const std::string& group,
                           StallCause downstream_cause);

  private:
    /** Handle one request; returns false if it must be retried. */
    bool processRequest(const ReadReq& req);

    const Engine& engine_;
    MomsBankConfig cfg_;
    CacheArray cache_;
    std::unique_ptr<MshrFile> mshrs_;
    SubentryStore subentries_;
    LineDownstream* down_ = nullptr;

    TimedQueue<ReadReq> cpu_req_in_;
    TimedQueue<ReadResp> cpu_resp_out_;

    std::optional<ReadReq> retry_;      //!< stalled request register
    /** Lines whose subentry list awaits draining (line, head index). */
    RingDeque<std::pair<Addr, std::uint32_t>> drain_pending_;
    Addr drain_line_ = 0;               //!< line being drained
    std::uint32_t drain_cursor_ = kNoSubentry;
    bool resp_port_used_ = false;       //!< drain claimed the output

    Stats stats_;
    mutable StatRegistry::Eraser stat_eraser_;
};

} // namespace gmoms

#endif // GMOMS_CACHE_MOMS_BANK_HH
