#include "src/cache/moms_bank.hh"

#include <algorithm>

#include "src/sim/log.hh"

namespace gmoms
{

MomsBank::MomsBank(const Engine& engine, std::string name,
                   const MomsBankConfig& cfg)
    : Component(std::move(name)), engine_(engine), cfg_(cfg),
      cache_(cfg.cache_bytes, cfg.cache_ways),
      subentries_(cfg.num_subentries),
      cpu_req_in_(engine, cfg.req_queue_depth, cfg.req_latency),
      cpu_resp_out_(engine, cfg.resp_queue_depth, cfg.resp_latency)
{
    if (cfg.assoc_mshr) {
        mshrs_ = std::make_unique<AssocMshr>(cfg.num_mshrs);
    } else {
        mshrs_ = std::make_unique<CuckooMshr>(cfg.num_mshrs,
                                              cfg.mshr_tables,
                                              cfg.max_kicks);
    }
    // Wake on request arrival and on response-queue backpressure
    // release (a blocked hit/drain can proceed).
    cpu_req_in_.setConsumer(this);
    cpu_resp_out_.setProducer(this);
}

Cycle
MomsBank::nextActivity() const
{
    if (drain_cursor_ != kNoSubentry || !drain_pending_.empty())
        return 0;  // drain engine busy (or stalling) every cycle
    if (retry_)
        return 0;  // stalled request retries (and counts) every cycle
    // Cycle-valued: in-flight tokens (requests in the input queue,
    // lines travelling back from downstream) bound the next tick even
    // when they are not poppable yet — queue hooks only cover pushes
    // that happen while the bank is asleep.
    Cycle next = cpu_req_in_.peekReadyCycle();
    if (mshrs_->occupancy() > 0 && down_ != nullptr)
        next = std::min(next, down_->lineReadyCycle());
    return next;
}

void
MomsBank::tick()
{
    if (!down_)
        panic("MomsBank has no downstream connected");

    // 1. Drain engine: deliver one pending subentry response per cycle
    //    through the response output port.
    resp_port_used_ = false;
    if (drain_cursor_ == kNoSubentry && !drain_pending_.empty()) {
        drain_line_ = drain_pending_.front().first;
        drain_cursor_ = drain_pending_.front().second;
        drain_pending_.pop_front();
    }
    if (drain_cursor_ != kNoSubentry) {
        ++stats_.drain_busy;
        if (cpu_resp_out_.canPush()) {
            const SubentryStore::Subentry& sub =
                subentries_.at(drain_cursor_);
            cpu_resp_out_.push(ReadResp{drain_line_ + sub.line_offset,
                                        sub.tag, sub.client});
            ++stats_.responses;
            drain_cursor_ = subentries_.free(drain_cursor_);
            resp_port_used_ = true;
        } else {
            ++stats_.stall_resp_out;
        }
    }

    // 2. One input operation: a returning line takes priority over a
    //    request (pipeline sharing, Section V-E). Polling downstream
    //    is pointless without outstanding misses.
    if (drain_pending_.size() < 4 && mshrs_->occupancy() > 0) {
        if (std::optional<Addr> line = down_->receive()) {
            MshrEntry* entry = mshrs_->find(*line);
            if (!entry)
                panic("line response without an MSHR entry");
            ++stats_.lines_from_mem;
            drain_pending_.emplace_back(*line, entry->subentry_head);
            mshrs_->erase(*line);
            cache_.fill(*line);
            return;
        }
    }

    // 3. Request pipeline: retry register first, then the input queue.
    if (retry_) {
        if (processRequest(*retry_))
            retry_.reset();
        return;
    }
    if (cpu_req_in_.canPop()) {
        ReadReq req = cpu_req_in_.pop();
        ++stats_.requests;
        if (!processRequest(req))
            retry_ = req;
    }
}

bool
MomsBank::processRequest(const ReadReq& req)
{
    const Addr line = lineOf(req.addr);

    if (MshrEntry* entry = mshrs_->find(line)) {
        // Secondary miss (MSHR hit): equivalent to a cache hit from a
        // throughput perspective — no new memory request.
        if (cfg_.max_subentries_per_miss != 0 &&
            entry->subentry_count >= cfg_.max_subentries_per_miss) {
            ++stats_.stall_subentry;
            return false;
        }
        if (!subentries_.append(*entry, req.tag, req.client,
                                static_cast<std::uint16_t>(
                                    lineOffset(req.addr)))) {
            ++stats_.stall_subentry;
            return false;
        }
        ++stats_.secondary_misses;
        return true;
    }

    if (cache_.contains(line)) {
        // Hit data and drain data contend for the response output port.
        if (resp_port_used_ || !cpu_resp_out_.canPush()) {
            ++stats_.stall_resp_out;
            return false;
        }
        cache_.lookup(line);  // commit LRU update and hit statistics
        cpu_resp_out_.push(ReadResp{req.addr, req.tag, req.client});
        ++stats_.hits;
        ++stats_.responses;
        return true;
    }

    // Primary miss: needs a subentry, an MSHR slot and downstream space.
    if (subentries_.full()) {
        ++stats_.stall_subentry;
        return false;
    }
    if (!down_->canSend(line)) {
        ++stats_.stall_downstream;
        return false;
    }
    MshrEntry* entry = mshrs_->insert(line);
    if (!entry) {
        ++stats_.stall_mshr;
        return false;
    }
    if (!subentries_.append(*entry, req.tag, req.client,
                            static_cast<std::uint16_t>(
                                lineOffset(req.addr))))
        panic("subentry pool exhausted after availability check");
    down_->send(line);
    ++stats_.primary_misses;
    return true;
}

bool
MomsBank::idle() const
{
    return cpu_req_in_.empty() && cpu_resp_out_.empty() && !retry_ &&
           drain_cursor_ == kNoSubentry && drain_pending_.empty() &&
           mshrs_->occupancy() == 0;
}

void
MomsBank::registerStats(StatRegistry& reg) const
{
    stat_eraser_ = reg.scopedPrefix(name() + ".");
    reg.addCounter(name() + ".requests", &stats_.requests);
    reg.addCounter(name() + ".hits", &stats_.hits);
    reg.addCounter(name() + ".primary_misses", &stats_.primary_misses);
    reg.addCounter(name() + ".secondary_misses",
                   &stats_.secondary_misses);
    reg.addCounter(name() + ".responses", &stats_.responses);
    reg.addCounter(name() + ".lines_from_mem", &stats_.lines_from_mem);
    reg.addCounter(name() + ".stall_mshr", &stats_.stall_mshr);
    reg.addCounter(name() + ".stall_subentry", &stats_.stall_subentry);
    reg.addCounter(name() + ".stall_downstream",
                   &stats_.stall_downstream);
    reg.addCounter(name() + ".drain_busy", &stats_.drain_busy);
}

void
MomsBank::registerTelemetry(Telemetry& tele, const std::string& group,
                            StallCause downstream_cause)
{
    tele.addStall(group, StallCause::MshrFull, &stats_.stall_mshr);
    tele.addStall(group, StallCause::SubentryFull,
                  &stats_.stall_subentry);
    tele.addStall(group, downstream_cause, &stats_.stall_downstream);
    tele.addStall(group, StallCause::DownstreamBackpressure,
                  &stats_.stall_resp_out);
    tele.addCounter(group + ".requests", &stats_.requests);
    tele.addCounter(group + ".hits", &stats_.hits);
    tele.addCounter(group + ".secondary_misses",
                    &stats_.secondary_misses);
    tele.addCounter(group + ".lines_from_mem", &stats_.lines_from_mem);
    tele.addLevel(group + ".mshr_occupancy", [this] {
        return static_cast<double>(mshrs_->occupancy());
    });
    cpu_req_in_.attachProbe(tele.makeQueueProbe(
        name() + ".req_in", cpu_req_in_.capacity()));
    cpu_resp_out_.attachProbe(tele.makeQueueProbe(
        name() + ".resp_out", cpu_resp_out_.capacity()));
    drain_pending_.attachProbe(
        tele.makeQueueProbe(name() + ".drain_pending", 0), &engine_);
}

} // namespace gmoms
