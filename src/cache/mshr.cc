#include "src/cache/mshr.hh"

#include "src/sim/log.hh"

namespace gmoms
{

namespace
{

/** Per-table multiplicative hash constants (odd, high-entropy). */
constexpr std::uint64_t kHashMul[8] = {
    0x9e3779b97f4a7c15ull, 0xc2b2ae3d27d4eb4full, 0x165667b19e3779f9ull,
    0x27d4eb2f165667c5ull, 0x94d049bb133111ebull, 0xbf58476d1ce4e5b9ull,
    0xff51afd7ed558ccdull, 0xc4ceb9fe1a85ec53ull,
};

} // namespace

CuckooMshr::CuckooMshr(std::uint32_t capacity, std::uint32_t tables,
                       std::uint32_t max_kicks)
    : tables_(tables), max_kicks_(max_kicks)
{
    if (tables == 0 || tables > 8)
        fatal("CuckooMshr supports 1-8 tables");
    if (capacity % tables != 0)
        fatal("CuckooMshr capacity must be a multiple of the table count");
    slots_per_table_ = capacity / tables;
    if (!isPow2(slots_per_table_))
        fatal("CuckooMshr slots per table must be a power of two");
    entries_.resize(capacity);
}

std::uint32_t
CuckooMshr::slotOf(Addr line, std::uint32_t table) const
{
    const std::uint64_t h = (line / kLineBytes) * kHashMul[table];
    return static_cast<std::uint32_t>(h >> 40) & (slots_per_table_ - 1);
}

MshrEntry*
CuckooMshr::find(Addr line)
{
    for (std::uint32_t t = 0; t < tables_; ++t) {
        MshrEntry& e = at(t, slotOf(line, t));
        if (e.valid && e.line == line)
            return &e;
    }
    return nullptr;
}

MshrEntry*
CuckooMshr::insert(Addr line)
{
    // Fast path: an empty slot in any table.
    for (std::uint32_t t = 0; t < tables_; ++t) {
        MshrEntry& e = at(t, slotOf(line, t));
        if (!e.valid) {
            e = MshrEntry{line, kNoSubentry, kNoSubentry, 0, true};
            noteInsert();
            return &e;
        }
    }
    // Cuckoo path: displace residents, round-robin through tables,
    // recording each swap so a failed insertion can be fully undone
    // (displaced entries own live subentry lists and must not be lost).
    MshrEntry pending{line, kNoSubentry, kNoSubentry, 0, true};
    struct Step { std::uint32_t table, slot; };
    std::vector<Step> path;
    path.reserve(max_kicks_);
    std::uint32_t table = 0;
    for (std::uint32_t kick = 0; kick < max_kicks_; ++kick) {
        const std::uint32_t slot = slotOf(pending.line, table);
        std::swap(pending, at(table, slot));
        path.push_back(Step{table, slot});
        ++stats_.cuckoo_kicks;
        if (!pending.valid) {
            noteInsert();
            // The new entry may itself have been displaced onward;
            // return its current location.
            MshrEntry* placed = find(line);
            if (!placed)
                panic("cuckoo insert lost the new entry");
            return placed;
        }
        table = (table + 1) % tables_;
    }
    // Give up: unwind the kick chain in reverse, restoring every
    // displaced entry to its original slot.
    for (auto it = path.rbegin(); it != path.rend(); ++it)
        std::swap(pending, at(it->table, it->slot));
    ++stats_.insert_failures;
    return nullptr;
}

void
CuckooMshr::erase(Addr line)
{
    for (std::uint32_t t = 0; t < tables_; ++t) {
        MshrEntry& e = at(t, slotOf(line, t));
        if (e.valid && e.line == line) {
            e.valid = false;
            --occupancy_;
            return;
        }
    }
    panic("CuckooMshr::erase: line not present");
}

AssocMshr::AssocMshr(std::uint32_t capacity)
{
    if (capacity == 0)
        fatal("AssocMshr capacity must be >= 1");
    entries_.resize(capacity);
}

MshrEntry*
AssocMshr::find(Addr line)
{
    for (MshrEntry& e : entries_)
        if (e.valid && e.line == line)
            return &e;
    return nullptr;
}

MshrEntry*
AssocMshr::insert(Addr line)
{
    for (MshrEntry& e : entries_) {
        if (!e.valid) {
            e = MshrEntry{line, kNoSubentry, kNoSubentry, 0, true};
            noteInsert();
            return &e;
        }
    }
    ++stats_.insert_failures;
    return nullptr;
}

void
AssocMshr::erase(Addr line)
{
    for (MshrEntry& e : entries_) {
        if (e.valid && e.line == line) {
            e.valid = false;
            --occupancy_;
            return;
        }
    }
    panic("AssocMshr::erase: line not present");
}

} // namespace gmoms
