/**
 * @file
 * Full miss-optimized memory systems: the shared, private-only and
 * two-level organizations of Fig. 8, plus their traditional-cache
 * twins used as baselines throughout Section V.
 *
 * PEs talk to a MomsSystem through SourcePort (one per PE). Internally:
 *  - Shared:    PE ports -> request/response crossbars -> B banks -> DRAM.
 *  - Private:   PE ports -> per-PE bank -> DRAM.
 *  - TwoLevel:  PE ports -> per-PE (L1) bank -> crossbar -> B shared
 *               (L2) banks -> DRAM. L1 banks request whole lines, so the
 *               L2 coalesces across PEs exactly like a two-level cache.
 *
 * Shared banks are statically bound to one DRAM channel (Section IV-B):
 * the bank index of a line embeds its channel, so each bank only ever
 * addresses its own channel.
 */

#ifndef GMOMS_CACHE_MOMS_SYSTEM_HH
#define GMOMS_CACHE_MOMS_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/cache/burst_assembler.hh"
#include "src/cache/moms_bank.hh"
#include "src/mem/memory_system.hh"
#include "src/sim/engine.hh"

namespace gmoms
{

/** What a PE sees: a port for short irregular source-node reads. */
class SourcePort
{
  public:
    virtual ~SourcePort() = default;
    virtual bool canSend() const = 0;
    virtual bool send(const ReadReq& req) = 0;
    virtual std::optional<ReadResp> receive() = 0;
    /** Earliest cycle receive() may yield a response — kCycleNever
     *  when nothing is in flight. Must report in-flight responses (not
     *  just currently-poppable ones) so a sleeping PE is re-armed by
     *  its own quiescence check; see LineDownstream::lineReadyCycle(). */
    virtual Cycle responseReadyCycle() const = 0;
    /** Bind the requesting PE for engine wake-ups: woken when a
     *  response becomes poppable and when a full request path frees. */
    virtual void bindClient(Component* pe) = 0;
};

struct MomsConfig
{
    enum class Topology { Shared, Private, TwoLevel };

    Topology topology = Topology::TwoLevel;
    std::uint32_t num_shared_banks = 16;
    MomsBankConfig shared_bank;   //!< used by Shared and TwoLevel
    MomsBankConfig private_bank;  //!< used by Private and TwoLevel
    /** Extra link latency for paths that cross SLR boundaries (Fig. 5:
     *  two register stages each way). */
    Cycle crossing_latency = 4;
    std::uint32_t crossbar_queue_depth = 32;

    /** DynaBurst extension: assemble DRAM bursts out of nearby line
     *  misses (Section V-A — the paper found the benefit too low;
     *  kept as a reproducible option). */
    bool dynaburst = false;
    BurstAssemblerConfig dynaburst_cfg;

    /** Paper-style label such as "16/16 32k" (Fig. 11). */
    std::string label(std::uint32_t num_pes) const;

    // -- convenience factories (sizes are paper values / 8 to match the
    //    scaled datasets; see DESIGN.md section 5) ----------------------

    /** The paper's shared-only MOMS [6]. */
    static MomsConfig shared(std::uint32_t banks);
    /** Private-only MOMS, one bank per PE (Fig. 8 middle). */
    static MomsConfig privateOnly();
    /** Two-level MOMS with @p banks shared banks and @p private_cache
     *  bytes of per-PE cache (often 0, per Section V-B). */
    static MomsConfig twoLevel(std::uint32_t banks,
                               std::uint64_t private_cache_bytes = 0);
    /** Traditional non-blocking cache in the same three shapes:
     *  16 fully-associative MSHRs, 8 subentries per MSHR. */
    static MomsConfig traditionalShared(std::uint32_t banks);
    static MomsConfig traditionalTwoLevel(std::uint32_t banks);

    /** MemorySystem ports a MomsSystem with this config will consume. */
    std::uint32_t
    memPortsNeeded(std::uint32_t num_pes) const
    {
        return topology == Topology::Private ? num_pes
                                             : num_shared_banks;
    }

    /** Drop all cache arrays (the cache-less sweeps of Figs. 12/15). */
    MomsConfig withoutCacheArrays() const;
    /** Scale private/shared cache sizes (Fig. 15 sweeps). */
    MomsConfig withPrivateCache(std::uint64_t bytes) const;
    MomsConfig withSharedCache(std::uint64_t bytes) const;
};

/**
 * A constructed MOMS instance: owns banks, crossbar state and DRAM
 * adapters, and aggregates statistics across levels.
 */
class MomsSystem : public Component
{
  public:
    /** Crossbar arbitration outcomes (Section II's bank-conflict
     *  bottleneck, made countable). Incremented only on cycles where a
     *  token is poppable, i.e. ticks that occur in both engine modes,
     *  so the counts are engine-mode exact. */
    struct XbarStats
    {
        std::uint64_t req_conflicts = 0;     //!< bank already claimed
        std::uint64_t req_bank_busy = 0;     //!< bank input queue full
        std::uint64_t resp_conflicts = 0;    //!< client already claimed
        std::uint64_t resp_backpressure = 0; //!< client resp queue full
    };

    /**
     * Test-only fault injection, exercised by the hardening-layer
     * regression tests (tests/test_hardening.cc) to prove the
     * conservation checkers actually fire. Null in production: the
     * hooks cost one pointer test on paths already full of queue
     * checks, and nothing at all when no shared crossbar exists.
     */
    struct FaultHooks
    {
        /** Drop the next request token popped from the request
         *  crossbar instead of delivering it to its bank. */
        bool drop_next_request = false;
        /** Response-crossbar client whose credit is wedged: responses
         *  destined to it are never pushed (counted as backpressure),
         *  modeling a lost crossing credit. -1 disables. */
        std::int32_t stuck_client = -1;
    };

    /** @p name_prefix prefixes every component name ("b2." for
     *  cluster board 2); @p bank_tick_group is the parallel tick group
     *  of the banks (cluster boards use per-board groups). */
    MomsSystem(Engine& engine, MemorySystem& mem,
               std::uint32_t first_mem_port, std::uint32_t num_pes,
               const MomsConfig& cfg,
               const std::string& name_prefix = "",
               int bank_tick_group = tick_group::kCacheBank);
    ~MomsSystem() override;

    SourcePort& pePort(std::uint32_t pe) { return *pe_ports_[pe]; }

    /** Crossbar movement for shared topologies; banks tick themselves. */
    void tick() override;

    /**
     * Quiescence: active whenever any crossbar input or shared-bank
     * response is poppable; otherwise sleeps (queue hooks re-wake it).
     * The free-running arbitration pointers it would have advanced
     * while asleep are reconstructed by catchUp()/gap accounting, so
     * arbitration order is bit-exact with the full-tick engine.
     */
    Cycle nextActivity() const override;
    void catchUp(Cycle upto) override;

    /** Invalidate every cache array (iteration boundary). */
    void invalidateCaches();

    bool idle() const;

    /** Number of MemorySystem ports consumed, starting at
     *  first_mem_port. */
    std::uint32_t memPortsUsed() const { return mem_ports_used_; }

    // -- aggregate statistics -------------------------------------------
    /** PE-facing requests (level-1 accesses). */
    std::uint64_t totalRequests() const;
    /** Hits in either cache level (Fig. 12 definition). */
    std::uint64_t totalHits() const;
    /** Secondary misses in either level. */
    std::uint64_t totalSecondaryMisses() const;
    /** Lines fetched from DRAM by this memory system. */
    std::uint64_t totalLinesFromMem() const;
    double hitRate() const;

    const MomsConfig& config() const { return cfg_; }
    const std::vector<std::unique_ptr<MomsBank>>& sharedBanks() const
    {
        return shared_banks_;
    }
    const std::vector<std::unique_ptr<MomsBank>>& privateBanks() const
    {
        return private_banks_;
    }

    const XbarStats& xbarStats() const { return xbar_stats_; }

    /** Attach (or detach, with nullptr) test-only fault injection. */
    void setFaultHooks(FaultHooks* hooks) { faults_ = hooks; }

    /** In-flight tokens buffered in the request / response crossbar
     *  queues (0 for Private: no crossbar). Used by the conservation
     *  checkers to balance sent vs delivered tokens. */
    std::uint64_t xbarReqDepth() const;
    std::uint64_t xbarRespDepth() const;

    /** One line per non-empty internal queue ("  <name>: n/cap"), for
     *  watchdog diagnostic dumps; empty string when fully drained. */
    std::string queueReport() const;

    void registerStats(StatRegistry& reg) const;

    /** Attach every level (banks, crossbar, burst assemblers) to
     *  @p tele with topology-aware stall groups: "moms.shared" /
     *  "moms.private" / "moms.l1"+"moms.l2" and "moms.xbar". */
    void registerTelemetry(Telemetry& tele);

  private:
    struct DramAdapter;
    struct SharedLevelAdapter;
    struct BankDirectPort;
    struct CrossbarPort;

    /** Shared bank that owns @p line (channel-aware hash). */
    std::uint32_t bankOf(Addr line) const;

    Engine& engine_;
    MemorySystem& mem_;
    MomsConfig cfg_;
    std::uint32_t num_pes_ = 0;
    std::uint32_t num_channels_ = 0;
    std::uint32_t mem_ports_used_ = 0;

    std::vector<std::unique_ptr<MomsBank>> shared_banks_;
    std::vector<std::unique_ptr<MomsBank>> private_banks_;
    std::vector<std::unique_ptr<LineDownstream>> downstreams_;
    std::vector<std::unique_ptr<BurstAssembler>> assemblers_;
    std::vector<std::unique_ptr<SourcePort>> pe_ports_;

    // Crossbar queues (client side) for shared topologies. For
    // TwoLevel the "clients" are the private banks.
    std::vector<std::unique_ptr<TimedQueue<ReadReq>>> xbar_req_;
    std::vector<std::unique_ptr<TimedQueue<ReadResp>>> xbar_resp_;
    std::uint32_t xbar_req_rr_ = 0;
    std::uint32_t xbar_resp_rr_ = 0;
    /** Next cycle the rr pointers have not yet accounted for: under
     *  full tick they advance every cycle; when ticks are skipped the
     *  missed increments are applied in bulk (tick()/catchUp()). */
    Cycle rr_accounted_until_ = 0;
    // Per-cycle arbitration scratch (members to avoid reallocation).
    // "Claimed this cycle" == entry equals the current claim epoch, so
    // no per-tick O(banks)+O(clients) clear is needed.
    std::vector<std::uint64_t> bank_claimed_;
    std::vector<std::uint64_t> client_claimed_;
    std::uint64_t claim_epoch_ = 0;

    XbarStats xbar_stats_;
    FaultHooks* faults_ = nullptr;
    mutable StatRegistry::Eraser stat_eraser_;
};

} // namespace gmoms

#endif // GMOMS_CACHE_MOMS_SYSTEM_HH
