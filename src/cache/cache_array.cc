#include "src/cache/cache_array.hh"

#include "src/sim/log.hh"

namespace gmoms
{

CacheArray::CacheArray(std::uint64_t size_bytes, std::uint32_t ways)
    : size_bytes_(size_bytes), ways_(ways)
{
    if (size_bytes == 0) {
        num_sets_ = 0;
        return;
    }
    if (ways == 0)
        fatal("cache associativity must be >= 1");
    if (size_bytes % kLineBytes != 0)
        fatal("cache size must be a multiple of the line size");
    const std::uint64_t lines = size_bytes / kLineBytes;
    if (lines % ways != 0)
        fatal("cache size must be a multiple of ways * line size");
    num_sets_ = static_cast<std::uint32_t>(lines / ways);
    if (!isPow2(num_sets_))
        fatal("cache set count must be a power of two");
    ways_storage_.resize(static_cast<std::size_t>(num_sets_) * ways_);
}

std::uint32_t
CacheArray::setOf(Addr line) const
{
    return static_cast<std::uint32_t>((line / kLineBytes) &
                                      (num_sets_ - 1));
}

bool
CacheArray::lookup(Addr line)
{
    if (disabled()) {
        ++stats_.misses;
        return false;
    }
    Way* set = &ways_storage_[static_cast<std::size_t>(setOf(line)) *
                              ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].line == line) {
            set[w].lru = ++stamp_;
            ++stats_.hits;
            return true;
        }
    }
    ++stats_.misses;
    return false;
}

bool
CacheArray::contains(Addr line) const
{
    if (disabled())
        return false;
    const Way* set = &ways_storage_[static_cast<std::size_t>(setOf(line)) *
                                    ways_];
    for (std::uint32_t w = 0; w < ways_; ++w)
        if (set[w].valid && set[w].line == line)
            return true;
    return false;
}

void
CacheArray::fill(Addr line)
{
    if (disabled())
        return;
    Way* set = &ways_storage_[static_cast<std::size_t>(setOf(line)) *
                              ways_];
    Way* victim = &set[0];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].line == line)
            return;  // already present
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lru < victim->lru)
            victim = &set[w];
    }
    victim->valid = true;
    victim->line = line;
    victim->lru = ++stamp_;
}

void
CacheArray::invalidateAll()
{
    for (Way& w : ways_storage_)
        w.valid = false;
}

} // namespace gmoms
