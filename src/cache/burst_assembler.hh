/**
 * @file
 * DynaBurst-style burst assembler [Asiatici & Ienne, FPL'19].
 *
 * Sits between a MOMS bank's miss path and DRAM. Line requests are
 * parked in per-window registers (a window is an aligned span of
 * consecutive lines); when a window fills up or times out, one DRAM
 * burst covering the span between the first and last requested line is
 * issued — trading possibly-unused fetched lines for fewer, longer
 * DRAM transactions. The paper evaluated this on the graph accelerator
 * and found "the benefit to be too low to compensate for the
 * corresponding area and delay increase" (Section V-A); the
 * `ablation_dynaburst` bench reproduces that negative result.
 */

#ifndef GMOMS_CACHE_BURST_ASSEMBLER_HH
#define GMOMS_CACHE_BURST_ASSEMBLER_HH

#include <cstdint>

#include "src/cache/moms_bank.hh"
#include "src/mem/memory_system.hh"
#include "src/sim/engine.hh"
#include "src/sim/flat_map.hh"
#include "src/sim/ring_deque.hh"

namespace gmoms
{

struct BurstAssemblerConfig
{
    /** Window span in cache lines (aligned); 8 lines = 512 B. */
    std::uint32_t window_lines = 8;
    /** Cycles a window waits for companions before flushing. */
    Cycle wait_cycles = 8;
    /** Maximum concurrently open (unflushed) windows. */
    std::uint32_t max_open_windows = 16;
};

class BurstAssembler : public Component, public LineDownstream
{
  public:
    struct Stats
    {
        std::uint64_t line_requests = 0;
        std::uint64_t bursts = 0;
        std::uint64_t lines_fetched = 0;  //!< includes span filler
        std::uint64_t timeouts = 0;       //!< windows flushed by age
    };

    BurstAssembler(const Engine& engine, std::string name,
                   const BurstAssemblerConfig& cfg, MemPort port);

    // -- LineDownstream (bank side) ---------------------------------------
    bool canSend(Addr line) const override;
    void send(Addr line) override;
    std::optional<Addr> receive() override;
    /** Delivered lines are poppable immediately; lines still inside a
     *  DRAM burst are reported by our own nextActivity() and handed to
     *  the bank with a same-cycle wake from tick(). */
    Cycle
    lineReadyCycle() const override
    {
        return ready_.empty() ? kCycleNever : 0;
    }
    void bindUpstream(Component* bank) override { upstream_ = bank; }

    void tick() override;

    /**
     * Quiescence: sleeps unless a window is flushable now (full or
     * expired), will expire at a known future cycle, or a burst
     * response is in flight on the DRAM port. New send() calls from
     * the bank self-wake the assembler.
     */
    Cycle nextActivity() const override;

    const Stats& stats() const { return stats_; }

    /** Attach counters and the ready-line queue probe to @p tele
     *  (series group "dynaburst"). */
    void
    registerTelemetry(Telemetry& tele)
    {
        tele.addCounter("dynaburst.line_requests",
                        &stats_.line_requests);
        tele.addCounter("dynaburst.bursts", &stats_.bursts);
        tele.addCounter("dynaburst.lines_fetched",
                        &stats_.lines_fetched);
        tele.addCounter("dynaburst.timeouts", &stats_.timeouts);
        ready_.attachProbe(tele.makeQueueProbe(name() + ".ready", 0),
                           &engine_);
    }

  private:
    struct Window
    {
        std::uint64_t mask = 0;  //!< requested lines within the window
        Cycle opened = 0;
    };

    Addr windowBase(Addr line) const
    {
        return line & ~(static_cast<Addr>(cfg_.window_lines) *
                            kLineBytes -
                        1);
    }

    /** Flush one window into a DRAM burst; false on port backpressure. */
    bool flush(Addr base, const Window& window);

    const Engine& engine_;
    BurstAssemblerConfig cfg_;
    MemPort port_;
    Component* upstream_ = nullptr;  //!< bank to wake on line delivery
    /** Open windows, at most max_open_windows (canSend() contract). */
    FlatMap<Addr, Window> open_;
    /** Requested-line masks of bursts in flight, keyed by burst tag. */
    FlatMap<std::uint64_t, std::pair<Addr, std::uint64_t>> in_flight_;
    std::uint64_t next_tag_ = 0;
    RingDeque<Addr> ready_;  //!< completed lines awaiting the bank
    Stats stats_;
};

} // namespace gmoms

#endif // GMOMS_CACHE_BURST_ASSEMBLER_HH
